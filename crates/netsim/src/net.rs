//! Message transmission bookkeeping.

use std::fmt;

use rtdb::SiteId;
use starlite::{RandomSource, SimDuration, SimTime};

use crate::delay::DelayMatrix;
use crate::fault::{LinkFaults, NetStats, PPM_SCALE};

/// Result of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message will arrive at the destination at this instant; the
    /// caller schedules a delivery event there.
    Deliver {
        /// Delivery instant.
        at: SimTime,
    },
    /// The fault plan duplicated the message: it arrives at `at` and again
    /// at `again_at`; the caller schedules two delivery events.
    DeliverTwice {
        /// First delivery instant.
        at: SimTime,
        /// Second delivery instant (one tick later).
        again_at: SimTime,
    },
    /// An endpoint site is not operational at send time; the message is
    /// lost immediately. The sender should arm its timeout (the paper's
    /// unblocking mechanism).
    DroppedAtSend,
    /// The fault plan lost the message on the link; the sender learns
    /// nothing and must rely on its timeout.
    LostInFlight,
}

/// One journalled transmission (see [`Network::set_tracing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetJournalEntry {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// When the message was offered.
    pub sent_at: SimTime,
    /// When it will arrive, or `None` if it was dropped or lost.
    pub deliver_at: Option<SimTime>,
}

/// The simulated network: delays, per-site operational status, counters,
/// optional link faults.
///
/// FIFO per link is guaranteed by construction when delay jitter is off:
/// delays are per-pair constants, so two messages on the same link never
/// reorder, and the kernel's same-instant tie-break preserves send order.
/// A nonzero [`LinkFaults::jitter_ticks`] waives that guarantee.
///
/// Delivery is a two-phase contract: [`Network::send`] decides the fate of
/// the message on the link, and the model must call [`Network::deliver`]
/// when each scheduled delivery event fires — a destination that failed
/// while the message was in flight drops it *at delivery time*.
///
/// # Example
///
/// ```
/// use netsim::{DelayMatrix, Network, SendOutcome};
/// use rtdb::SiteId;
/// use starlite::{SimDuration, SimTime};
///
/// let mut net = Network::new(DelayMatrix::uniform(2, SimDuration::from_ticks(30)));
/// match net.send(SiteId(0), SiteId(1), SimTime::from_ticks(10)) {
///     SendOutcome::Deliver { at } => {
///         assert_eq!(at, SimTime::from_ticks(40));
///         // ... at time `at`, the model hands the message over:
///         assert!(net.deliver(SiteId(1)));
///     }
///     _ => unreachable!("fault-free network, both sites up"),
/// }
/// ```
pub struct Network {
    delays: DelayMatrix,
    up: Vec<bool>,
    link: LinkFaults,
    rng: Option<RandomSource>,
    sent: u64,
    delivered: u64,
    dropped_at_send: u64,
    dropped_in_flight: u64,
    duplicated: u64,
    remote_sent: u64,
    trace: bool,
    journal: Vec<NetJournalEntry>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("sites", &self.delays.site_count())
            .field("sent", &self.sent)
            .field("dropped_at_send", &self.dropped_at_send)
            .field("dropped_in_flight", &self.dropped_in_flight)
            .finish()
    }
}

impl Network {
    /// Creates a fault-free network with all sites operational.
    pub fn new(delays: DelayMatrix) -> Self {
        Network::with_faults(delays, LinkFaults::default())
    }

    /// Creates a network whose remote links obey the given fault
    /// configuration. With a no-op configuration no RNG is consulted and
    /// behaviour is identical to [`Network::new`].
    pub fn with_faults(delays: DelayMatrix, link: LinkFaults) -> Self {
        let sites = delays.site_count() as usize;
        let rng = if link.is_noop() {
            None
        } else {
            Some(RandomSource::new(link.seed))
        };
        Network {
            delays,
            up: vec![true; sites],
            link,
            rng,
            sent: 0,
            delivered: 0,
            dropped_at_send: 0,
            dropped_in_flight: 0,
            duplicated: 0,
            remote_sent: 0,
            trace: false,
            journal: Vec::new(),
        }
    }

    /// Turns journalling of transmissions on or off. Off by default; with
    /// tracing off the journal stays empty and `send` pays one branch.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    /// Moves all journalled entries into `out` (appending), oldest first.
    /// A no-op when tracing is off.
    pub fn drain_journal(&mut self, out: &mut Vec<NetJournalEntry>) {
        out.append(&mut self.journal);
    }

    /// Number of sites.
    pub fn site_count(&self) -> u8 {
        self.delays.site_count()
    }

    /// The delay configuration.
    pub fn delays(&self) -> &DelayMatrix {
        &self.delays
    }

    /// Offers a message for transmission at time `now`.
    ///
    /// Intra-site messages always deliver with zero delay and are never
    /// faulted (they do not go through the message server). Remote messages
    /// are dropped at once when either endpoint is down, and are otherwise
    /// subject to the link fault configuration: probabilistic loss, delay
    /// jitter, and duplication.
    ///
    /// # Panics
    ///
    /// Panics if either site is out of range.
    pub fn send(&mut self, from: SiteId, to: SiteId, now: SimTime) -> SendOutcome {
        let d = self.delays.delay(from, to); // validates ranges
        self.sent += 1;
        if from != to {
            self.remote_sent += 1;
            if !self.up[from.index()] || !self.up[to.index()] {
                self.dropped_at_send += 1;
                self.journal(from, to, now, None);
                return SendOutcome::DroppedAtSend;
            }
            let mut at = now + d;
            if let Some(mut rng) = self.rng.take() {
                let outcome = self.fault_draws(&mut rng, from, to, now, &mut at);
                self.rng = Some(rng);
                if let Some(o) = outcome {
                    return o;
                }
            }
            self.journal(from, to, now, Some(at));
            return SendOutcome::Deliver { at };
        }
        self.journal(from, to, now, Some(now + d));
        SendOutcome::Deliver { at: now + d }
    }

    /// Applies the per-message fault draws to a remote send; returns the
    /// final outcome for loss/duplication, or `None` to deliver once at the
    /// (possibly jittered) instant `*at`.
    fn fault_draws(
        &mut self,
        rng: &mut RandomSource,
        from: SiteId,
        to: SiteId,
        now: SimTime,
        at: &mut SimTime,
    ) -> Option<SendOutcome> {
        if self.link.loss_ppm > 0
            && rng.uniform_inclusive(0, u64::from(PPM_SCALE) - 1) < u64::from(self.link.loss_ppm)
        {
            self.dropped_in_flight += 1;
            self.journal(from, to, now, None);
            return Some(SendOutcome::LostInFlight);
        }
        if self.link.jitter_ticks > 0 {
            *at += SimDuration::from_ticks(rng.uniform_inclusive(0, self.link.jitter_ticks));
        }
        if self.link.duplicate_ppm > 0
            && rng.uniform_inclusive(0, u64::from(PPM_SCALE) - 1)
                < u64::from(self.link.duplicate_ppm)
        {
            self.duplicated += 1;
            let again_at = *at + SimDuration::from_ticks(1);
            self.journal(from, to, now, Some(*at));
            self.journal(from, to, now, Some(again_at));
            return Some(SendOutcome::DeliverTwice { at: *at, again_at });
        }
        None
    }

    fn journal(&mut self, from: SiteId, to: SiteId, sent_at: SimTime, deliver_at: Option<SimTime>) {
        if self.trace {
            self.journal.push(NetJournalEntry {
                from,
                to,
                sent_at,
                deliver_at,
            });
        }
    }

    /// Hands a scheduled delivery over to the destination site. Returns
    /// `true` if the site is operational (the message arrives) and `false`
    /// if it failed while the message was in flight — the message is
    /// counted as dropped in flight and the caller must discard it.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn deliver(&mut self, to: SiteId) -> bool {
        assert!(to.0 < self.site_count(), "site out of range");
        if self.up[to.index()] {
            self.delivered += 1;
            true
        } else {
            self.dropped_in_flight += 1;
            false
        }
    }

    /// Marks a site operational or failed. Messages already in flight have
    /// their fate decided at delivery time by [`Network::deliver`].
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn set_site_up(&mut self, site: SiteId, operational: bool) {
        assert!(site.0 < self.site_count(), "site out of range");
        self.up[site.index()] = operational;
    }

    /// Whether `site` is operational.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn is_site_up(&self, site: SiteId) -> bool {
        assert!(site.0 < self.site_count(), "site out of range");
        self.up[site.index()]
    }

    /// Total messages offered (including intra-site and dropped ones).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Messages offered across a link (excluding intra-site traffic).
    pub fn remote_sent_count(&self) -> u64 {
        self.remote_sent
    }

    /// Messages dropped for any reason (at send time or in flight).
    pub fn dropped_count(&self) -> u64 {
        self.dropped_at_send + self.dropped_in_flight
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NetStats {
        NetStats {
            sent: self.sent,
            delivered: self.delivered,
            dropped_at_send: self.dropped_at_send,
            dropped_in_flight: self.dropped_in_flight,
            duplicated: self.duplicated,
        }
    }

    /// A reasonable timeout for a synchronous call to `to`: two one-way
    /// delays plus `slack`.
    pub fn round_trip_timeout(&self, from: SiteId, to: SiteId, slack: SimDuration) -> SimDuration {
        self.delays.delay(from, to) * 2 + slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(delay: u64) -> Network {
        Network::new(DelayMatrix::uniform(3, SimDuration::from_ticks(delay)))
    }

    #[test]
    fn remote_send_adds_delay() {
        let mut n = net(25);
        match n.send(SiteId(0), SiteId(2), SimTime::from_ticks(100)) {
            SendOutcome::Deliver { at } => assert_eq!(at, SimTime::from_ticks(125)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.remote_sent_count(), 1);
    }

    #[test]
    fn local_send_is_instant_and_not_remote() {
        let mut n = net(25);
        match n.send(SiteId(1), SiteId(1), SimTime::from_ticks(5)) {
            SendOutcome::Deliver { at } => assert_eq!(at, SimTime::from_ticks(5)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.remote_sent_count(), 0);
    }

    #[test]
    fn down_site_drops_messages_at_send() {
        let mut n = net(25);
        n.set_site_up(SiteId(2), false);
        assert_eq!(
            n.send(SiteId(0), SiteId(2), SimTime::ZERO),
            SendOutcome::DroppedAtSend
        );
        assert_eq!(n.dropped_count(), 1);
        assert_eq!(n.stats().dropped_at_send, 1);
        // Local delivery at a down site still works (the site's own
        // processes are the model's concern, not the network's).
        n.set_site_up(SiteId(2), true);
        assert!(matches!(
            n.send(SiteId(0), SiteId(2), SimTime::ZERO),
            SendOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn down_sender_drops_messages_at_send() {
        let mut n = net(25);
        n.set_site_up(SiteId(0), false);
        assert_eq!(
            n.send(SiteId(0), SiteId(1), SimTime::ZERO),
            SendOutcome::DroppedAtSend
        );
    }

    /// Regression: a destination that fails after send but before delivery
    /// must drop the in-flight message at delivery time — the fate is no
    /// longer sealed at send time.
    #[test]
    fn in_flight_message_to_failing_site_is_dropped_at_delivery() {
        let mut n = net(25);
        let at = match n.send(SiteId(0), SiteId(2), SimTime::ZERO) {
            SendOutcome::Deliver { at } => at,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(at, SimTime::from_ticks(25));
        // The site fails while the message is in flight.
        n.set_site_up(SiteId(2), false);
        assert!(!n.deliver(SiteId(2)));
        let s = n.stats();
        assert_eq!(s.dropped_in_flight, 1);
        assert_eq!(s.dropped_at_send, 0);
        assert_eq!(s.delivered, 0);
        assert_eq!(n.dropped_count(), 1);
        // After restart, deliveries go through again.
        n.set_site_up(SiteId(2), true);
        assert!(n.deliver(SiteId(2)));
        assert_eq!(n.stats().delivered, 1);
    }

    #[test]
    fn journal_records_sends_and_drops() {
        let mut n = net(25);
        n.set_tracing(true);
        n.send(SiteId(0), SiteId(1), SimTime::from_ticks(10));
        n.set_site_up(SiteId(2), false);
        n.send(SiteId(0), SiteId(2), SimTime::from_ticks(20));
        let mut journal = Vec::new();
        n.drain_journal(&mut journal);
        assert_eq!(
            journal,
            vec![
                NetJournalEntry {
                    from: SiteId(0),
                    to: SiteId(1),
                    sent_at: SimTime::from_ticks(10),
                    deliver_at: Some(SimTime::from_ticks(35)),
                },
                NetJournalEntry {
                    from: SiteId(0),
                    to: SiteId(2),
                    sent_at: SimTime::from_ticks(20),
                    deliver_at: None,
                },
            ]
        );
        let mut again = Vec::new();
        n.drain_journal(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn certain_loss_drops_every_remote_message() {
        let faults = LinkFaults {
            loss_ppm: PPM_SCALE,
            seed: 7,
            ..LinkFaults::default()
        };
        let mut n =
            Network::with_faults(DelayMatrix::uniform(3, SimDuration::from_ticks(10)), faults);
        for i in 0..20 {
            assert_eq!(
                n.send(SiteId(0), SiteId(1), SimTime::from_ticks(i)),
                SendOutcome::LostInFlight
            );
        }
        assert_eq!(n.stats().dropped_in_flight, 20);
        // Intra-site messages are never faulted.
        assert!(matches!(
            n.send(SiteId(1), SiteId(1), SimTime::ZERO),
            SendOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn certain_duplication_delivers_twice_one_tick_apart() {
        let faults = LinkFaults {
            duplicate_ppm: PPM_SCALE,
            seed: 7,
            ..LinkFaults::default()
        };
        let mut n =
            Network::with_faults(DelayMatrix::uniform(3, SimDuration::from_ticks(10)), faults);
        match n.send(SiteId(0), SiteId(1), SimTime::from_ticks(5)) {
            SendOutcome::DeliverTwice { at, again_at } => {
                assert_eq!(at, SimTime::from_ticks(15));
                assert_eq!(again_at, SimTime::from_ticks(16));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.stats().duplicated, 1);
    }

    #[test]
    fn jitter_stays_within_bound_and_is_deterministic() {
        let faults = LinkFaults {
            jitter_ticks: 7,
            seed: 99,
            ..LinkFaults::default()
        };
        let mk = || {
            Network::with_faults(
                DelayMatrix::uniform(2, SimDuration::from_ticks(100)),
                faults,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..50 {
            let now = SimTime::from_ticks(i * 10);
            let oa = a.send(SiteId(0), SiteId(1), now);
            let ob = b.send(SiteId(0), SiteId(1), now);
            assert_eq!(oa, ob, "same seed must draw the same faults");
            match oa {
                SendOutcome::Deliver { at } => {
                    let extra = at.ticks() - (now.ticks() + 100);
                    assert!(extra <= 7, "jitter {extra} out of bound");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn round_trip_timeout_formula() {
        let n = net(10);
        assert_eq!(
            n.round_trip_timeout(SiteId(0), SiteId(1), SimDuration::from_ticks(5)),
            SimDuration::from_ticks(25)
        );
    }
}

//! # netsim — the simulated message server
//!
//! The paper's prototyping environment simulates a distributed system on a
//! single host: a Message Server per site listens on a well-known port,
//! queues messages from remote sites, and supports both Ada-style
//! rendezvous (synchronous) and asynchronous message passing, with a
//! time-out mechanism that unblocks a sender when the receiving site is not
//! operational. Inter-process communication *within* a site bypasses the
//! message server.
//!
//! This crate reproduces those semantics over the `starlite` kernel:
//!
//! * [`delay::DelayMatrix`] — per-pair communication delays (the paper's
//!   "communication cost" configuration and the delay axis of Figures 4–6);
//! * [`net::Network`] — send/delivery bookkeeping with per-site
//!   operational status (failure injection) and FIFO ordering per link;
//! * [`call::CallTable`] — correlation of synchronous request/reply pairs
//!   and their timeout events.
//!
//! The crate is transport-only: payloads are opaque to it, and the
//! simulation model schedules the delivery events `Network::send` returns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod call;
pub mod delay;
pub mod fault;
pub mod net;
pub mod topology;

pub use call::{CallId, CallTable};
pub use delay::DelayMatrix;
pub use fault::{CrashWindow, FaultPlan, LinkFaults, NetStats};
pub use net::{NetJournalEntry, Network, SendOutcome};
pub use topology::Topology;

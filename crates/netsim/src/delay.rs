//! Communication delay configuration.

use std::fmt;

use rtdb::SiteId;
use starlite::SimDuration;

/// A symmetric matrix of one-way communication delays between sites.
///
/// Intra-site delay is always zero: processes on the same site exchange
/// messages directly through their ports, bypassing the message server.
///
/// # Example
///
/// ```
/// use netsim::DelayMatrix;
/// use rtdb::SiteId;
/// use starlite::SimDuration;
///
/// let m = DelayMatrix::uniform(3, SimDuration::from_ticks(40));
/// assert_eq!(m.delay(SiteId(0), SiteId(2)), SimDuration::from_ticks(40));
/// assert_eq!(m.delay(SiteId(1), SiteId(1)), SimDuration::ZERO);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DelayMatrix {
    sites: u8,
    /// Row-major `sites × sites` one-way delays.
    delays: Vec<SimDuration>,
}

impl fmt::Debug for DelayMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DelayMatrix")
            .field("sites", &self.sites)
            .finish()
    }
}

impl DelayMatrix {
    /// A fully connected topology with the same one-way delay on every
    /// inter-site link (the paper's three-site experiments).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn uniform(sites: u8, delay: SimDuration) -> Self {
        Self::from_fn(sites, |a, b| if a == b { SimDuration::ZERO } else { delay })
    }

    /// Builds a matrix from a function of `(from, to)`.
    ///
    /// The function's value on the diagonal is ignored (forced to zero).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn from_fn(sites: u8, mut f: impl FnMut(SiteId, SiteId) -> SimDuration) -> Self {
        assert!(sites > 0, "a network needs at least one site");
        let n = sites as usize;
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..sites {
            for b in 0..sites {
                if a != b {
                    delays[a as usize * n + b as usize] = f(SiteId(a), SiteId(b));
                }
            }
        }
        DelayMatrix { sites, delays }
    }

    /// Number of sites.
    pub fn site_count(&self) -> u8 {
        self.sites
    }

    /// One-way delay from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either site is out of range.
    pub fn delay(&self, from: SiteId, to: SiteId) -> SimDuration {
        assert!(
            from.0 < self.sites && to.0 < self.sites,
            "site out of range"
        );
        self.delays[from.index() * self.sites as usize + to.index()]
    }

    /// The largest inter-site delay (zero for a single site).
    pub fn max_delay(&self) -> SimDuration {
        self.delays
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = DelayMatrix::uniform(3, SimDuration::from_ticks(7));
        for a in 0..3 {
            for b in 0..3 {
                let expected = if a == b { 0 } else { 7 };
                assert_eq!(m.delay(SiteId(a), SiteId(b)).ticks(), expected);
            }
        }
        assert_eq!(m.max_delay().ticks(), 7);
    }

    #[test]
    fn from_fn_asymmetric() {
        let m = DelayMatrix::from_fn(2, |a, b| {
            SimDuration::from_ticks((a.0 as u64 + 1) * 10 + b.0 as u64)
        });
        assert_eq!(m.delay(SiteId(0), SiteId(1)).ticks(), 11);
        assert_eq!(m.delay(SiteId(1), SiteId(0)).ticks(), 20);
        assert_eq!(m.delay(SiteId(0), SiteId(0)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        DelayMatrix::uniform(0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_site_panics() {
        let m = DelayMatrix::uniform(2, SimDuration::ZERO);
        m.delay(SiteId(0), SiteId(2));
    }
}

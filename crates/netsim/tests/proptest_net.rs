//! Property-based tests of the network simulation.

use netsim::{CallTable, DelayMatrix, Network, SendOutcome, Topology};
use proptest::prelude::*;
use rtdb::SiteId;
use starlite::{SimDuration, SimTime};

proptest! {
    /// Delivery time is exactly `now + delay(from, to)` for operational
    /// destinations, and intra-site sends are instantaneous.
    #[test]
    fn delivery_times_match_the_matrix(
        sites in 1u8..6,
        delay in 0u64..10_000,
        sends in prop::collection::vec((0u8..6, 0u8..6, 0u64..100_000), 1..30),
    ) {
        let mut net = Network::new(DelayMatrix::uniform(sites, SimDuration::from_ticks(delay)));
        for (from, to, at) in sends {
            let (from, to) = (SiteId(from % sites), SiteId(to % sites));
            let now = SimTime::from_ticks(at);
            match net.send(from, to, now) {
                SendOutcome::Deliver { at: delivered } => {
                    let expected = if from == to { 0 } else { delay };
                    prop_assert_eq!(delivered.since(now).ticks(), expected);
                }
                other => prop_assert!(false, "no faults configured, got {:?}", other),
            }
        }
    }

    /// Messages to failed sites drop; bringing a site back restores
    /// delivery. Counters stay consistent.
    #[test]
    fn failure_drops_and_recovery_restores(
        sites in 2u8..6,
        toggles in prop::collection::vec((0u8..6, any::<bool>()), 0..20),
    ) {
        let mut net = Network::new(DelayMatrix::uniform(sites, SimDuration::from_ticks(5)));
        let mut up = vec![true; sites as usize];
        for (site, state) in toggles {
            let site = SiteId(site % sites);
            net.set_site_up(site, state);
            up[site.index()] = state;
        }
        let mut expected_drops = 0;
        for to in 0..sites {
            let outcome = net.send(SiteId(0), SiteId(to), SimTime::ZERO);
            let should_drop = to != 0 && (!up[to as usize] || !up[0]);
            if should_drop {
                expected_drops += 1;
                prop_assert_eq!(outcome, SendOutcome::DroppedAtSend);
            } else {
                let delivered = matches!(outcome, SendOutcome::Deliver { .. });
                prop_assert!(delivered);
            }
        }
        prop_assert_eq!(net.dropped_count(), expected_drops);
    }

    /// Topology hop counts: zero on the diagonal, symmetric, positive off
    /// the diagonal, and within the topology's diameter.
    #[test]
    fn topology_hops_are_sane(sites in 2u8..8, hub in 0u8..8) {
        let hub = SiteId(hub % sites);
        for topology in [
            Topology::FullyConnected,
            Topology::Ring,
            Topology::Star { hub },
        ] {
            let diameter = match topology {
                Topology::FullyConnected => 1,
                Topology::Ring => (sites as u32) / 2,
                Topology::Star { .. } => 2,
            };
            for a in 0..sites {
                for b in 0..sites {
                    let h = topology.hops(sites, SiteId(a), SiteId(b));
                    let back = topology.hops(sites, SiteId(b), SiteId(a));
                    prop_assert_eq!(h, back, "{:?} not symmetric", topology);
                    if a == b {
                        prop_assert_eq!(h, 0);
                    } else {
                        prop_assert!(h >= 1);
                        prop_assert!(h <= diameter.max(1), "{:?} hops {} > diameter", topology, h);
                    }
                }
            }
        }
    }

    /// A call closes exactly once: whichever of reply/timeout comes first
    /// wins, the other is stale, and the counters add up.
    #[test]
    fn call_table_closes_exactly_once(
        events in prop::collection::vec((0usize..10, any::<bool>()), 1..40),
    ) {
        let mut table: CallTable<usize> = CallTable::new();
        let ids: Vec<_> = (0..10usize).map(|i| table.open(i, None)).collect();
        let mut closed = [false; 10];
        for (idx, is_reply) in events {
            let won = if is_reply {
                table.close(ids[idx]).is_some()
            } else {
                table.time_out(ids[idx]).is_some()
            };
            prop_assert_eq!(won, !closed[idx], "call {} double-closed", idx);
            closed[idx] = true;
        }
        let finished = closed.iter().filter(|&&c| c).count();
        prop_assert_eq!(
            (table.completed_count() + table.timed_out_count()) as usize,
            finished
        );
        prop_assert_eq!(table.open_count(), 10 - finished);
    }
}

//! The sharded, mutex-protected lock table driving the 2PL family
//! (FIFO 2PL, priority-queue 2PL, priority inheritance) on real threads.
//!
//! Layout follows the classic `lock_table` shape: objects hash to one of
//! `SHARDS` buckets, each bucket a `Mutex<Shard>` over per-object entries
//! holding the current holders and the wait queue. A blocked requester
//! parks on its own [`WaitSlot`] (mutex + condvar); grants are handed out
//! by whichever thread mutates the entry (a releaser wakes the waiters it
//! unblocks), so there is no separate lock-manager thread.
//!
//! Deadlock detection is global and eager: a single [`Mutex`]-protected
//! [`WaitsForGraph`] (the same structure the simulator uses) is kept
//! exactly in sync with the bucket queues — every enqueue, dequeue and
//! grant pass recomputes the affected entry's wait-for edges while both
//! the bucket and the detector are held (lock order: bucket, then
//! detector; at most one bucket is ever held). Any new edge therefore
//! runs a cycle check at the instant it appears, so late-forming cycles
//! (a transaction granted here, then blocked elsewhere) are caught too.
//! The lowest-effective-priority cycle member is poisoned through its
//! wait slot and aborts itself on wakeup.
//!
//! Event stamping: every `LockRequested` / `LockGranted` / `LockBlocked`
//! / `LockUpgraded` / `LockReleased` / `DeadlockDetected` is recorded
//! *inside* the bucket critical section that performs the state change
//! (see [`crate::recorder`]), so the merged stream linearizes each
//! object's history exactly as it happened.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use monitor::SimEventKind;
use rtdb::{LockMode, ObjectId, TxnId, WaitsForGraph};
use starlite::{FxHashMap, FxHashSet, Priority};

use crate::recorder::{Recorder, ThreadLog};

/// Wait-queue discipline, mirroring the simulator's `QueuePolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveQueue {
    /// Strict arrival order (the paper's "2PL").
    Fifo,
    /// Most-urgent-first (the paper's "2PL with priority mode").
    Priority,
}

/// Outcome of a blocking acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock is held; proceed.
    Granted,
    /// The caller was chosen as a deadlock victim: release everything,
    /// emit the abort, and restart the transaction.
    Deadlock,
    /// The wall-clock deadline expired while waiting (or the caller was
    /// granted the lock but is now past its deadline — the lock IS held
    /// and must be released like any other).
    Timeout,
}

/// What a parked waiter observes when it wakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitState {
    Waiting,
    Granted,
    Victim,
}

/// One parked request: the waiter sleeps here, granters and the deadlock
/// detector flip the state and signal. Shared with the ceiling gate
/// (`crate::ceiling`), which parks its denied entrants the same way.
#[derive(Debug)]
pub struct WaitSlot {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl WaitSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WaitSlot {
            state: Mutex::new(WaitState::Waiting),
            cv: Condvar::new(),
        })
    }

    /// Flips to `to` and wakes the waiter. Grant/victim decisions are
    /// made under the table's bucket + detector locks (or the ceiling
    /// gate's single mutex), so the two transitions never race each
    /// other.
    pub(crate) fn wake(&self, to: WaitState) {
        let mut st = self.state.lock().unwrap();
        if *st == WaitState::Waiting {
            *st = to;
            self.cv.notify_all();
        }
    }

    /// The state the slot has settled to (racy outside the owning
    /// table/gate lock — callers re-check under it).
    pub(crate) fn settled(&self) -> WaitState {
        *self.state.lock().unwrap()
    }
}

/// Parks on `slot` until it leaves `Waiting` or `deadline` passes;
/// a `Waiting` return means the deadline expired first.
pub(crate) fn wait_until(slot: &WaitSlot, deadline: Instant) -> WaitState {
    let mut st = slot.state.lock().unwrap();
    loop {
        match *st {
            WaitState::Waiting => {
                let now = Instant::now();
                if now >= deadline {
                    return WaitState::Waiting;
                }
                let (guard, _) = slot.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
            s => return s,
        }
    }
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    /// Effective priority level at enqueue time (queue order under
    /// [`LiveQueue::Priority`]).
    level: i64,
    /// Read→write upgrade of an already-held lock.
    upgrade: bool,
    slot: Arc<WaitSlot>,
}

#[derive(Debug, Default)]
struct Entry {
    holders: Vec<(TxnId, LockMode)>,
    waiters: Vec<Waiter>,
}

impl Entry {
    fn is_idle(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }

    fn holds(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|&&(t, _)| t == txn)
            .map(|&(_, m)| m)
    }
}

#[derive(Debug, Default)]
struct Shard {
    entries: FxHashMap<ObjectId, Entry>,
}

/// Global deadlock-detection and priority state, one mutex for all of it.
/// Always acquired *after* a bucket, never while holding two buckets.
#[derive(Debug, Default)]
struct Detector {
    wfg: WaitsForGraph,
    /// Slot of every currently parked waiter, so a cycle found from one
    /// bucket can poison a victim parked in another.
    slots: FxHashMap<TxnId, Arc<WaitSlot>>,
    /// Poisoned transactions that have not yet removed themselves from
    /// their queue; skipped by grant passes and edge recomputation.
    victims: FxHashSet<TxnId>,
    /// Effective priority levels (base, raised by inheritance).
    level: FxHashMap<TxnId, i64>,
    /// Base levels, to restore after a transaction finishes.
    base: FxHashMap<TxnId, i64>,
    deadlocks: u64,
}

/// The live lock manager for the 2PL family.
#[derive(Debug)]
pub struct LiveTable {
    shards: Vec<Mutex<Shard>>,
    detector: Mutex<Detector>,
    queue: LiveQueue,
    /// Raise holders' effective priority to their most urgent waiter's
    /// (the priority-inheritance protocol).
    inheritance: bool,
}

const SHARDS: usize = 64;

fn shard_of(object: ObjectId) -> usize {
    // Objects are dense small integers; a multiplicative scramble spreads
    // consecutive ids over the buckets.
    (object.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize >> (64 - 6)
}

impl LiveTable {
    /// A fresh table with the given queue discipline; `inheritance`
    /// enables the priority-inheritance rule on top of it.
    pub fn new(queue: LiveQueue, inheritance: bool) -> Self {
        LiveTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            detector: Mutex::new(Detector::default()),
            queue,
            inheritance,
        }
    }

    /// Registers a transaction's base priority before its first request.
    pub fn register(&self, txn: TxnId, priority: Priority) {
        let mut det = self.detector.lock().unwrap();
        det.level.insert(txn, priority.level());
        det.base.insert(txn, priority.level());
    }

    /// Forgets a transaction entirely (after its terminal event).
    pub fn deregister(&self, txn: TxnId) {
        let mut det = self.detector.lock().unwrap();
        det.level.remove(&txn);
        det.base.remove(&txn);
        det.victims.remove(&txn);
        det.wfg.remove_txn(txn);
    }

    /// Restores a restarting victim's priority to its base level.
    pub fn reset_priority(&self, txn: TxnId) {
        let mut det = self.detector.lock().unwrap();
        if let Some(&b) = det.base.get(&txn) {
            det.level.insert(txn, b);
        }
        det.victims.remove(&txn);
    }

    /// Deadlock cycles detected so far.
    pub fn deadlocks(&self) -> u64 {
        self.detector.lock().unwrap().deadlocks
    }

    /// Acquires `object` in `mode` for `txn`, blocking until granted,
    /// poisoned, or `deadline`. Returns the wall ticks spent blocked via
    /// `blocked_ticks`.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        object: ObjectId,
        mode: LockMode,
        deadline: Instant,
        blocked_ticks: &mut u64,
    ) -> Acquire {
        let slot;
        {
            let mut shard = self.shards[shard_of(object)].lock().unwrap();
            let entry = shard.entries.entry(object).or_default();
            log.record(rec, SimEventKind::LockRequested { txn, object, mode });

            // Re-entrant and upgrade paths.
            if let Some(held) = entry.holds(txn) {
                if mode == LockMode::Read || held == LockMode::Write {
                    // Covering re-grant; the oracle keeps the stronger mode.
                    log.record(rec, SimEventKind::LockGranted { txn, object, mode });
                    return Acquire::Granted;
                }
                // Read → write upgrade: immediate when sole holder.
                if entry.holders.len() == 1 {
                    for h in &mut entry.holders {
                        h.1 = LockMode::Write;
                    }
                    log.record(rec, SimEventKind::LockUpgraded { txn, object });
                    return Acquire::Granted;
                }
                slot = self.enqueue(rec, log, entry, object, txn, mode, true);
            } else if entry.holders.iter().all(|&(_, m)| m.compatible(mode))
                && entry.waiters.is_empty()
            {
                // Fast path: compatible with all holders, nobody queued.
                entry.holders.push((txn, mode));
                log.record(rec, SimEventKind::LockGranted { txn, object, mode });
                return Acquire::Granted;
            } else {
                slot = self.enqueue(rec, log, entry, object, txn, mode, false);
            }

            // Still under the bucket: sync the detector with the new
            // queue shape and check for a fresh cycle through us.
            let mut det = self.detector.lock().unwrap();
            det.slots.insert(txn, slot.clone());
            self.sync_entry_edges(entry, &mut det);
            self.detect_from(rec, log, &mut det, txn);
        }

        // Park until granted, poisoned, or the deadline.
        let wait_started = rec.now_ticks();
        let outcome = wait_until(&slot, deadline);
        *blocked_ticks += rec.now_ticks().saturating_sub(wait_started);
        match outcome {
            WaitState::Granted => Acquire::Granted,
            WaitState::Victim => {
                self.abandon_wait(rec, log, txn, object);
                Acquire::Deadlock
            }
            WaitState::Waiting => {
                // Timed out. Dequeue under the bucket — unless a racing
                // grant got there first, in which case we own the lock
                // (and the caller's deadline check will release it).
                if self.abandon_wait(rec, log, txn, object) {
                    return Acquire::Timeout;
                }
                // Not queued any more: a granter dequeued us between the
                // wakeup and the bucket lock. (Poisoning does not dequeue,
                // so the settled state can only be a grant.)
                match slot.settled() {
                    WaitState::Granted => Acquire::Granted,
                    WaitState::Victim => Acquire::Deadlock,
                    WaitState::Waiting => Acquire::Timeout,
                }
            }
        }
    }

    /// Releases every lock in `held`, waking whoever becomes grantable.
    /// `held` is the caller's own record of its grants, in acquire order;
    /// locks are released in reverse.
    pub fn release_all(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        held: &[(ObjectId, LockMode)],
    ) {
        for &(object, _) in held.iter().rev() {
            let mut shard = self.shards[shard_of(object)].lock().unwrap();
            if let Some(entry) = shard.entries.get_mut(&object) {
                let before = entry.holders.len();
                entry.holders.retain(|&(t, _)| t != txn);
                if entry.holders.len() != before {
                    log.record(rec, SimEventKind::LockReleased { txn, object });
                }
                let mut det = self.detector.lock().unwrap();
                self.grant_pass(rec, log, entry, object, &mut det);
                if entry.is_idle() {
                    shard.entries.remove(&object);
                }
            }
        }
    }

    /// Whether every bucket is empty (no holders, no waiters) — the
    /// quiescent post-run state the stress tests assert.
    pub fn idle(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().unwrap().entries.is_empty())
    }

    /// Panics if any entry holds incompatible grants simultaneously —
    /// the live analogue of the oracle's lock-compatibility invariant,
    /// checkable at any instant from any thread.
    pub fn assert_compatible(&self) {
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (obj, entry) in &shard.entries {
                for (i, &(t1, m1)) in entry.holders.iter().enumerate() {
                    for &(t2, m2) in &entry.holders[i + 1..] {
                        assert!(
                            m1.compatible(m2),
                            "incompatible co-holders on {obj}: {t1}:{m1:?} vs {t2}:{m2:?}"
                        );
                    }
                }
            }
        }
    }

    // --- internals -------------------------------------------------------

    /// Enqueues a blocked request (bucket held) and records `LockBlocked`.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        entry: &mut Entry,
        object: ObjectId,
        txn: TxnId,
        mode: LockMode,
        upgrade: bool,
    ) -> Arc<WaitSlot> {
        let level = self.level_of(txn);
        let blocker = entry
            .holders
            .iter()
            .find(|&&(t, m)| t != txn && !m.compatible(mode))
            .map(|&(t, _)| t)
            .or_else(|| {
                entry
                    .waiters
                    .iter()
                    .find(|w| !w.mode.compatible(mode))
                    .map(|w| w.txn)
            })
            .or_else(|| entry.waiters.first().map(|w| w.txn));
        log.record(
            rec,
            SimEventKind::LockBlocked {
                txn,
                object,
                mode,
                blocker,
            },
        );
        let slot = WaitSlot::new();
        let waiter = Waiter {
            txn,
            mode,
            level,
            upgrade,
            slot: slot.clone(),
        };
        match self.queue {
            LiveQueue::Fifo => entry.waiters.push(waiter),
            LiveQueue::Priority => {
                // Most urgent first; FIFO among equals.
                let pos = entry
                    .waiters
                    .iter()
                    .position(|w| w.level < level)
                    .unwrap_or(entry.waiters.len());
                entry.waiters.insert(pos, waiter);
            }
        }
        if self.inheritance {
            self.inherit(rec, log, entry, level);
        }
        slot
    }

    /// Raises every conflicting holder's effective priority to at least
    /// `level` (priority inheritance), recording the donations.
    fn inherit(&self, rec: &Recorder, log: &mut ThreadLog, entry: &Entry, level: i64) {
        let mut det = self.detector.lock().unwrap();
        for &(holder, _) in &entry.holders {
            let cur = det.level.get(&holder).copied().unwrap_or(i64::MIN);
            if cur < level {
                det.level.insert(holder, level);
                log.record(
                    rec,
                    SimEventKind::PriorityInherited {
                        txn: holder,
                        priority: Priority::new(level),
                    },
                );
            }
        }
    }

    fn level_of(&self, txn: TxnId) -> i64 {
        self.detector
            .lock()
            .unwrap()
            .level
            .get(&txn)
            .copied()
            .unwrap_or(0)
    }

    /// Removes `txn` from `object`'s wait queue after a timeout or
    /// poisoning, re-syncing edges and re-running the grant pass (a
    /// departing FIFO waiter can unblock the queue behind it). Returns
    /// whether the waiter was still queued; `false` means a racing grant
    /// already dequeued it and the caller owns the lock.
    fn abandon_wait(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        object: ObjectId,
    ) -> bool {
        let mut shard = self.shards[shard_of(object)].lock().unwrap();
        let entry = shard.entries.entry(object).or_default();
        let mut det = self.detector.lock().unwrap();
        let before = entry.waiters.len();
        entry.waiters.retain(|w| w.txn != txn);
        let was_queued = entry.waiters.len() != before;
        det.slots.remove(&txn);
        det.victims.remove(&txn);
        det.wfg.clear_waiter(txn);
        self.grant_pass(rec, log, entry, object, &mut det);
        if entry.is_idle() {
            shard.entries.remove(&object);
        }
        was_queued
    }

    /// Grants every waiter that is now grantable, front of the queue
    /// first, stopping at the first ungrantable live waiter (strict
    /// queue order); then recomputes the entry's wait-for edges and
    /// checks the survivors for late-forming cycles. Bucket + detector
    /// held.
    fn grant_pass(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        entry: &mut Entry,
        object: ObjectId,
        det: &mut Detector,
    ) {
        while let Some(idx) = entry
            .waiters
            .iter()
            .position(|w| !det.victims.contains(&w.txn))
        {
            let w = &entry.waiters[idx];
            let grantable = if w.upgrade {
                entry.holders.len() == 1 && entry.holders[0].0 == w.txn
            } else {
                entry
                    .holders
                    .iter()
                    .all(|&(t, m)| t != w.txn && m.compatible(w.mode))
            };
            if !grantable {
                break;
            }
            let w = entry.waiters.remove(idx);
            if w.upgrade {
                for h in &mut entry.holders {
                    h.1 = LockMode::Write;
                }
                log.record(rec, SimEventKind::LockUpgraded { txn: w.txn, object });
            } else {
                entry.holders.push((w.txn, w.mode));
                log.record(
                    rec,
                    SimEventKind::LockGranted {
                        txn: w.txn,
                        object,
                        mode: w.mode,
                    },
                );
            }
            det.slots.remove(&w.txn);
            det.wfg.clear_waiter(w.txn);
            w.slot.wake(WaitState::Granted);
        }
        self.sync_entry_edges(entry, det);
        let survivors: Vec<TxnId> = entry
            .waiters
            .iter()
            .filter(|w| !det.victims.contains(&w.txn))
            .map(|w| w.txn)
            .collect();
        for t in survivors {
            self.detect_from(rec, log, det, t);
        }
    }

    /// Recomputes the wait-for edges of every live waiter of `entry`:
    /// a waiter waits on every conflicting holder and every conflicting
    /// live waiter ahead of it. A blocked transaction waits on exactly
    /// one object, so `set_edges` (replace-all) per waiter is exact.
    fn sync_entry_edges(&self, entry: &Entry, det: &mut Detector) {
        for (i, w) in entry.waiters.iter().enumerate() {
            if det.victims.contains(&w.txn) {
                continue;
            }
            let mut blockers: Vec<TxnId> = entry
                .holders
                .iter()
                .filter(|&&(t, m)| t != w.txn && !m.compatible(w.mode))
                .map(|&(t, _)| t)
                .collect();
            // An upgrader also waits on co-holders of the read lock.
            if w.upgrade {
                blockers.extend(
                    entry
                        .holders
                        .iter()
                        .filter(|&&(t, _)| t != w.txn)
                        .map(|&(t, _)| t),
                );
            }
            blockers.extend(
                entry.waiters[..i]
                    .iter()
                    .filter(|a| !det.victims.contains(&a.txn) && !a.mode.compatible(w.mode))
                    .map(|a| a.txn),
            );
            blockers.sort_unstable_by_key(|t| t.0);
            blockers.dedup();
            det.wfg.set_edges(w.txn, &blockers);
        }
    }

    /// Cycle check from `start`; on a hit, poisons the lowest-priority
    /// member and records `DeadlockDetected`. Bucket + detector held.
    fn detect_from(&self, rec: &Recorder, log: &mut ThreadLog, det: &mut Detector, start: TxnId) {
        let Some(cycle) = det.wfg.cycle_from(start) else {
            return;
        };
        let victim = cycle
            .iter()
            .copied()
            .min_by_key(|t| {
                (
                    det.level.get(t).copied().unwrap_or(0),
                    std::cmp::Reverse(t.0),
                )
            })
            .expect("cycles are non-empty");
        det.deadlocks += 1;
        det.victims.insert(victim);
        det.wfg.clear_waiter(victim);
        log.record(rec, SimEventKind::DeadlockDetected { victim });
        if let Some(slot) = det.slots.get(&victim) {
            slot.wake(WaitState::Victim);
        }
    }
}

//! # rtlock-live — the real-threads lock-manager backend
//!
//! Everything else in this workspace evaluates the paper's locking
//! protocols under *simulated* concurrency: one event loop, one clock, a
//! perfectly ordered history. This crate executes the same protocols on
//! **real OS threads against real wall-clock deadlines**, and feeds the
//! result back through the same invariant oracle — closing the loop
//! between the model and an actual concurrent implementation.
//!
//! The pieces:
//!
//! * [`table`] — a sharded, mutex-protected lock table with per-object
//!   grant queues, condvar wait slots, and an eager global deadlock
//!   detector, implementing the 2PL family (FIFO, priority queues,
//!   priority inheritance);
//! * [`ceiling`] — the priority ceiling protocol, run by wrapping the
//!   *simulator's own* `PriorityCeilingProtocol` state machine in a
//!   single admission gate mutex, so live and simulated PCP share one
//!   implementation of the paper's rules;
//! * [`recorder`] — sequence-stamped per-thread event buffers whose
//!   merge is a valid linearization of every lock table's history
//!   (events are stamped inside the critical sections that perform the
//!   state changes they describe);
//! * [`runner`] — N worker threads executing generated `workload`
//!   transactions closed-loop, with per-transaction wall deadlines,
//!   deadlock-victim restarts, and a deliberately non-atomic shared
//!   store whose final consistency witnesses write-lock exclusivity.
//!
//! What the oracle can and cannot check on a wall-clock run: everything
//! structural — lock compatibility, upgrade legality, release matching,
//! transaction accounting, deadlock freedom for PCP, WFG acyclicity —
//! transfers unchanged, because the merged stream linearizes the actual
//! lock-state history. The one casualty is *blocked-at-most-once*, a
//! uniprocessor scheduling property; [`monitor::CheckConfig::live`]
//! waives exactly that check and nothing else.
//!
//! ```
//! use rtlock_live::{run_live, LiveConfig, LiveProtocol};
//! use monitor::{CheckConfig, CheckSink};
//! use starlite::EventSink;
//!
//! let mut config = LiveConfig::smoke(LiveProtocol::TwoPhase, 2);
//! config.txn_count = 20;
//! let report = run_live(&config);
//! assert_eq!(report.processed, 20);
//! assert!(report.store_consistent);
//!
//! // Replay the merged stream through the invariant oracle.
//! let mut sink = CheckSink::new(CheckConfig::live(false));
//! for (at, event) in &report.events {
//!     sink.emit(*at, *event);
//! }
//! assert!(sink.finish().is_empty());
//! ```

pub mod ceiling;
pub mod recorder;
pub mod runner;
pub mod table;

pub use ceiling::LiveCeiling;
pub use recorder::{Recorder, ThreadLog, TICK_NS};
pub use runner::{run_live, LiveConfig, LiveProtocol, LiveReport};
pub use table::{Acquire, LiveQueue, LiveTable, WaitSlot};

//! The worker-thread driver: generated transactions executed against
//! real wall-clock deadlines.
//!
//! `run_live` generates the same `workload` transaction stream the
//! simulated experiments use, spawns N OS worker threads, and has them
//! claim transactions closed-loop from the arrival-ordered list. Each
//! claim starts the transaction's wall clock: its deadline is the spec's
//! relative deadline (`deadline − arrival`, in ticks) converted to real
//! nanoseconds at [`TICK_NS`](crate::recorder::TICK_NS) from the claim
//! instant. Workers then run the classic strict-2PL shape — acquire every
//! lock (reads first, then writes), do the work while holding, commit,
//! release — against the chosen backend: the sharded [`LiveTable`] for
//! the 2PL family or the [`LiveCeiling`] admission gate for PCP.
//!
//! Two cross-checks come out of every run:
//!
//! * the per-thread event buffers, merged by sequence stamp into one
//!   stream ([`LiveReport::events`]) for `monitor::CheckSink` replay
//!   under [`monitor::CheckConfig::live`];
//! * a shared data store written with deliberately non-atomic
//!   read-modify-write increments under write locks
//!   ([`LiveReport::store_consistent`]) — if write-lock exclusivity ever
//!   broke, increments would be lost and the final counts would not
//!   match the committed write sets.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use monitor::{AbortReason, Histogram, SimEvent, SimEventKind};
use rtdb::{Catalog, LockMode, ObjectId, Placement, TxnId, TxnSpec};
use starlite::{SimDuration, SimTime};
use workload::{Generator, SizeDistribution, WorkloadSpec};

use crate::ceiling::LiveCeiling;
use crate::recorder::{Recorder, ThreadLog, TICK_NS};
use crate::table::{Acquire, LiveQueue, LiveTable};

/// Which locking protocol the live run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveProtocol {
    /// Two-phase locking, FIFO wait queues.
    TwoPhase,
    /// Two-phase locking, priority-ordered wait queues.
    TwoPhasePriority,
    /// Priority-queue 2PL plus priority inheritance.
    Inheritance,
    /// The paper's priority ceiling protocol (read/write semantics).
    Ceiling,
}

impl LiveProtocol {
    /// All four protocols, in the paper's presentation order.
    pub fn all() -> [LiveProtocol; 4] {
        [
            LiveProtocol::TwoPhase,
            LiveProtocol::TwoPhasePriority,
            LiveProtocol::Inheritance,
            LiveProtocol::Ceiling,
        ]
    }

    /// Short label used in sweep points and result files.
    pub fn name(self) -> &'static str {
        match self {
            LiveProtocol::TwoPhase => "2PL",
            LiveProtocol::TwoPhasePriority => "2PL-P",
            LiveProtocol::Inheritance => "PI",
            LiveProtocol::Ceiling => "PCP",
        }
    }

    /// Whether the protocol is ceiling-based — selects the oracle config
    /// ([`monitor::CheckConfig::live`]) and the backend.
    pub fn is_ceiling(self) -> bool {
        matches!(self, LiveProtocol::Ceiling)
    }

    /// The matching simulator protocol, for side-by-side comparison runs.
    pub fn sim_kind(self) -> rtlock::ProtocolKind {
        match self {
            LiveProtocol::TwoPhase => rtlock::ProtocolKind::TwoPhaseLocking,
            LiveProtocol::TwoPhasePriority => rtlock::ProtocolKind::TwoPhaseLockingPriority,
            LiveProtocol::Inheritance => rtlock::ProtocolKind::PriorityInheritance,
            LiveProtocol::Ceiling => rtlock::ProtocolKind::PriorityCeiling,
        }
    }
}

/// Parameters of one live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Protocol under test.
    pub protocol: LiveProtocol,
    /// Worker threads executing transactions.
    pub threads: usize,
    /// Transactions to execute.
    pub txn_count: u32,
    /// Database size (objects).
    pub db_size: u32,
    /// Objects per transaction.
    pub txn_size: u32,
    /// Fraction of read-only transactions.
    pub read_only_fraction: f64,
    /// Deadline slack factor (deadline = slack × size × per-object cost).
    pub slack_factor: f64,
    /// Nominal per-object cost the deadline rule multiplies, in ticks
    /// (µs of wall clock in a live run).
    pub per_object_cost: u64,
    /// Busy-work per object while its lock is held, in microseconds —
    /// the live stand-in for the simulator's CPU+I/O service time, and
    /// the knob that creates real lock contention.
    pub hold_us: u64,
    /// Workload seed.
    pub seed: u64,
}

impl LiveConfig {
    /// A contended default: paper-like shape (200 objects, size-8
    /// all-update transactions, slack 5) with enough per-object hold
    /// time that lock conflicts are real.
    pub fn new(protocol: LiveProtocol, threads: usize) -> Self {
        LiveConfig {
            protocol,
            threads,
            txn_count: 400,
            db_size: 200,
            txn_size: 8,
            read_only_fraction: 0.0,
            slack_factor: 5.0,
            per_object_cost: 1_500,
            hold_us: 20,
            seed: 7,
        }
    }

    /// A fast variant for smoke tests and CI: fewer transactions, less
    /// hold time, same protocol semantics.
    pub fn smoke(protocol: LiveProtocol, threads: usize) -> Self {
        LiveConfig {
            txn_count: 120,
            hold_us: 5,
            ..LiveConfig::new(protocol, threads)
        }
    }
}

/// What one live run produced.
#[derive(Debug)]
pub struct LiveReport {
    /// Protocol label ([`LiveProtocol::name`]).
    pub protocol: &'static str,
    /// Worker threads that ran.
    pub threads: usize,
    /// Transactions executed (committed + missed).
    pub processed: u32,
    /// Transactions committed before their wall deadline.
    pub committed: u32,
    /// Transactions aborted at their wall deadline.
    pub missed: u32,
    /// Deadlock-victim restarts (2PL family only).
    pub restarts: u32,
    /// Deadlock cycles detected.
    pub deadlocks: u64,
    /// Requests denied by the ceiling admission test (PCP only).
    pub ceiling_blocks: u64,
    /// Wall-clock duration of the threaded section.
    pub wall: Duration,
    /// Per-transaction blocked time, in ticks (µs).
    pub blocked_hist: Histogram,
    /// The merged, sequence-ordered event stream for oracle replay.
    pub events: Vec<(SimTime, SimEvent)>,
    /// Whether the shared store's final counts match the committed write
    /// sets — the lost-update witness for write-lock exclusivity.
    pub store_consistent: bool,
}

impl LiveReport {
    /// Committed transactions per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.committed as f64 / secs
        } else {
            0.0
        }
    }

    /// `100 × missed / processed`.
    pub fn pct_missed(&self) -> f64 {
        if self.processed > 0 {
            100.0 * self.missed as f64 / self.processed as f64
        } else {
            0.0
        }
    }
}

/// The two lock-manager backends behind one call surface. The gate is
/// boxed so the enum stays small either way (one allocation per run).
enum Backend {
    Table(LiveTable),
    Gate(Box<LiveCeiling>),
}

impl Backend {
    fn for_protocol(protocol: LiveProtocol) -> Self {
        match protocol {
            LiveProtocol::TwoPhase => Backend::Table(LiveTable::new(LiveQueue::Fifo, false)),
            LiveProtocol::TwoPhasePriority => {
                Backend::Table(LiveTable::new(LiveQueue::Priority, false))
            }
            LiveProtocol::Inheritance => Backend::Table(LiveTable::new(LiveQueue::Priority, true)),
            LiveProtocol::Ceiling => Backend::Gate(Box::new(LiveCeiling::new(false))),
        }
    }

    fn register(&self, rec: &Recorder, log: &mut ThreadLog, spec: &TxnSpec) {
        match self {
            Backend::Table(t) => t.register(spec.id, spec.base_priority()),
            Backend::Gate(g) => g.register(rec, log, spec),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn acquire(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        object: ObjectId,
        mode: LockMode,
        deadline: Instant,
        blocked_ticks: &mut u64,
    ) -> Acquire {
        match self {
            Backend::Table(t) => t.acquire(rec, log, txn, object, mode, deadline, blocked_ticks),
            Backend::Gate(g) => g.acquire(rec, log, txn, object, mode, deadline, blocked_ticks),
        }
    }

    /// Releases everything and retires the transaction (terminal exit —
    /// commit or deadline abort).
    fn finish(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        held: &[(ObjectId, LockMode)],
    ) {
        match self {
            Backend::Table(t) => {
                t.release_all(rec, log, txn, held);
                t.deregister(txn);
            }
            Backend::Gate(g) => g.finish(rec, log, txn),
        }
    }

    /// Releases everything but keeps the transaction registered, for a
    /// deadlock-victim restart (2PL family only — the ceiling gate is
    /// deadlock-free).
    fn prepare_restart(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        held: &[(ObjectId, LockMode)],
    ) {
        match self {
            Backend::Table(t) => {
                t.release_all(rec, log, txn, held);
                t.reset_priority(txn);
            }
            Backend::Gate(_) => unreachable!("ceiling admission is deadlock-free"),
        }
    }

    fn deadlocks(&self) -> u64 {
        match self {
            Backend::Table(t) => t.deadlocks(),
            Backend::Gate(_) => 0,
        }
    }

    fn ceiling_blocks(&self) -> u64 {
        match self {
            Backend::Table(_) => 0,
            Backend::Gate(g) => g.ceiling_blocks(),
        }
    }

    fn assert_quiescent(&self) {
        match self {
            Backend::Table(t) => {
                t.assert_compatible();
                assert!(t.idle(), "live lock table not idle after drain");
            }
            Backend::Gate(g) => g.assert_idle(),
        }
    }
}

/// How one transaction attempt ended.
enum TxnOutcome {
    Committed,
    Missed,
}

/// Per-worker tallies, merged into the report after the join.
#[derive(Default)]
struct WorkerStats {
    committed: u32,
    missed: u32,
    restarts: u32,
    blocked_hist: Histogram,
    /// Indices (into the spec list) of committed transactions, for the
    /// store-consistency expectation.
    committed_idx: Vec<usize>,
}

/// Spins for roughly `us` microseconds — the stand-in for per-object
/// service time. A sleep would be hopelessly coarse at this scale.
fn busy_work(us: u64) {
    if us == 0 {
        return;
    }
    let until = Instant::now() + Duration::from_micros(us);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

/// Executes `config` on real threads and returns the merged report.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics (a poisoned
/// bucket mutex inside the run surfaces here too).
pub fn run_live(config: &LiveConfig) -> LiveReport {
    assert!(config.threads > 0, "need at least one worker thread");
    let catalog = Catalog::new(config.db_size, 1, Placement::SingleSite);
    let workload = WorkloadSpec::builder()
        .txn_count(config.txn_count)
        .mean_interarrival(SimDuration::from_ticks(
            (config.per_object_cost * config.txn_size as u64).max(1),
        ))
        .size(SizeDistribution::Fixed(config.txn_size))
        .read_only_fraction(config.read_only_fraction)
        .write_fraction(0.5)
        .deadline(
            config.slack_factor,
            SimDuration::from_ticks(config.per_object_cost),
        )
        .build();
    let specs = Generator::new(&workload, &catalog).generate(config.seed);

    let backend = Backend::for_protocol(config.protocol);
    let rec = Recorder::new();
    let next = AtomicUsize::new(0);
    let store: Vec<AtomicU64> = (0..config.db_size).map(|_| AtomicU64::new(0)).collect();

    let started = Instant::now();
    let mut results: Vec<(ThreadLog, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut log = ThreadLog::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(idx) else { break };
                        let outcome = run_txn(
                            &backend,
                            &rec,
                            &mut log,
                            spec,
                            &store,
                            config.hold_us,
                            &mut stats,
                        );
                        match outcome {
                            TxnOutcome::Committed => {
                                stats.committed += 1;
                                stats.committed_idx.push(idx);
                            }
                            TxnOutcome::Missed => stats.missed += 1,
                        }
                    }
                    (log, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("live worker panicked"))
            .collect()
    });
    let wall = started.elapsed();
    backend.assert_quiescent();

    // Store-consistency expectation: each committed transaction bumped
    // every object in its write set exactly once, under a write lock.
    let mut expected = vec![0u64; config.db_size as usize];
    let mut committed = 0u32;
    let mut missed = 0u32;
    let mut restarts = 0u32;
    let mut blocked_hist = Histogram::new();
    for (_, stats) in &results {
        committed += stats.committed;
        missed += stats.missed;
        restarts += stats.restarts;
        blocked_hist.merge(&stats.blocked_hist);
        for &idx in &stats.committed_idx {
            for obj in &specs[idx].write_set {
                expected[obj.0 as usize] += 1;
            }
        }
    }
    let store_consistent = store
        .iter()
        .zip(&expected)
        .all(|(s, &e)| s.load(Ordering::Relaxed) == e);

    let deadlocks = backend.deadlocks();
    let ceiling_blocks = backend.ceiling_blocks();
    let events = Recorder::merge(results.drain(..).map(|(log, _)| log).collect());

    LiveReport {
        protocol: config.protocol.name(),
        threads: config.threads,
        processed: committed + missed,
        committed,
        missed,
        restarts,
        deadlocks,
        ceiling_blocks,
        wall,
        blocked_hist,
        events,
        store_consistent,
    }
}

/// Runs one transaction to a terminal event: commit, or abort at its
/// wall deadline (restarting through deadlock-victim aborts on the way).
fn run_txn(
    backend: &Backend,
    rec: &Recorder,
    log: &mut ThreadLog,
    spec: &TxnSpec,
    store: &[AtomicU64],
    hold_us: u64,
    stats: &mut WorkerStats,
) -> TxnOutcome {
    let txn = spec.id;
    let relative_ticks = spec
        .deadline
        .ticks()
        .saturating_sub(spec.arrival.ticks())
        .max(1);
    let deadline = Instant::now() + Duration::from_nanos(relative_ticks * TICK_NS);
    log.record(
        rec,
        SimEventKind::TxnArrived {
            txn,
            priority: spec.base_priority(),
        },
    );
    backend.register(rec, log, spec);
    log.record(rec, SimEventKind::TxnStarted { txn });

    // Strict 2PL: reads first, then writes; an object in both sets is
    // read-locked in the growing phase and upgraded at its write.
    let plan: Vec<(ObjectId, LockMode)> = spec
        .read_set
        .iter()
        .map(|&o| (o, LockMode::Read))
        .chain(spec.write_set.iter().map(|&o| (o, LockMode::Write)))
        .collect();

    let mut blocked_ticks = 0u64;
    let outcome = 'retry: loop {
        let mut held: Vec<(ObjectId, LockMode)> = Vec::new();
        for &(object, mode) in &plan {
            if Instant::now() >= deadline {
                break 'retry abort_missed(backend, rec, log, txn, &held);
            }
            match backend.acquire(rec, log, txn, object, mode, deadline, &mut blocked_ticks) {
                Acquire::Granted => {
                    held.push((object, mode));
                    busy_work(hold_us);
                }
                Acquire::Timeout => {
                    break 'retry abort_missed(backend, rec, log, txn, &held);
                }
                Acquire::Deadlock => {
                    // Chosen as a deadlock victim: release, abort
                    // (non-terminal under restart semantics), retry from
                    // the top if the deadline still allows it.
                    backend.prepare_restart(rec, log, txn, &held);
                    log.record(
                        rec,
                        SimEventKind::TxnAborted {
                            txn,
                            reason: AbortReason::DeadlockVictim,
                        },
                    );
                    stats.restarts += 1;
                    if Instant::now() >= deadline {
                        break 'retry abort_missed(backend, rec, log, txn, &[]);
                    }
                    continue 'retry;
                }
            }
        }
        // All locks held; the commit decision is made before touching the
        // store so a last-instant miss leaves no trace in it.
        if Instant::now() >= deadline {
            break 'retry abort_missed(backend, rec, log, txn, &held);
        }
        // The increment is deliberately a non-atomic read-modify-write —
        // only write-lock exclusivity keeps it from losing updates, which
        // is exactly the property the final store comparison witnesses.
        for obj in &spec.write_set {
            let slot = &store[obj.0 as usize];
            let v = slot.load(Ordering::Relaxed);
            std::hint::spin_loop();
            slot.store(v + 1, Ordering::Relaxed);
        }
        for obj in &spec.read_set {
            std::hint::black_box(store[obj.0 as usize].load(Ordering::Relaxed));
        }
        backend.finish(rec, log, txn, &held);
        log.record(rec, SimEventKind::TxnCommitted { txn });
        break 'retry TxnOutcome::Committed;
    };
    stats.blocked_hist.record(blocked_ticks);
    outcome
}

/// The deadline-miss exit: release everything, then the terminal abort.
fn abort_missed(
    backend: &Backend,
    rec: &Recorder,
    log: &mut ThreadLog,
    txn: TxnId,
    held: &[(ObjectId, LockMode)],
) -> TxnOutcome {
    backend.finish(rec, log, txn, held);
    log.record(
        rec,
        SimEventKind::TxnAborted {
            txn,
            reason: AbortReason::DeadlineMissed,
        },
    );
    TxnOutcome::Missed
}

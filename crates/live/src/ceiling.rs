//! The live priority-ceiling gate.
//!
//! Rather than re-deriving the ceiling admission rules for real threads,
//! the gate wraps the *simulator's own* [`PriorityCeilingProtocol`] state
//! machine in a single mutex: every register / request / release runs the
//! exact protocol the simulated experiments run, with tracing on, and the
//! journalled events are stamped (see [`crate::recorder`]) while the gate
//! is still held — so the merged stream linearizes the gate's history
//! exactly. Threads denied admission park on a [`WaitSlot`]; whichever
//! thread's release admits them performs the grant inside its own
//! critical section and signals the slot.
//!
//! One mutex for the whole protocol is not the scalability sin it looks
//! like: the ceiling protocol is *globally* serialized by construction
//! (admission consults the ceilings of every locked object in the
//! system), so a sharded implementation would need a global lock at
//! admission anyway. The measured cost of the single gate versus the
//! sharded 2PL table is exactly one of the things `fig_live` exists to
//! show.
//!
//! Deadlock freedom comes from the admission argument, unchanged on
//! multicore: only transactions holding no locks ever block, so no wait
//! cycle can involve a lock holder. What does NOT carry over to real
//! concurrency is *blocked-at-most-once* in its uniprocessor form, which
//! is why [`monitor::CheckConfig::live`] waives only that check.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use monitor::SimEventKind;
use rtdb::{LockMode, ObjectId, TxnId, TxnSpec};
use rtlock::protocols::{LockProtocol, PriorityCeilingProtocol, ReleaseReason, RequestOutcome};
use starlite::FxHashMap;

use crate::recorder::{Recorder, ThreadLog};
use crate::table::{wait_until, Acquire, WaitSlot, WaitState};

struct Gate {
    proto: PriorityCeilingProtocol,
    /// Wait slot of every thread currently parked on a denied request.
    slots: FxHashMap<TxnId, Arc<WaitSlot>>,
    /// Scratch buffer for draining the protocol's event journal.
    drained: Vec<SimEventKind>,
}

impl Gate {
    /// Moves the protocol's journalled events into `log`, stamped while
    /// the gate is held — this is what makes the merged stream a valid
    /// linearization of the gate's history.
    fn drain(&mut self, rec: &Recorder, log: &mut ThreadLog) {
        self.proto.drain_events(&mut self.drained);
        for kind in self.drained.drain(..) {
            log.record(rec, kind);
        }
    }
}

/// The live priority-ceiling lock manager: the paper's protocol "C" (or
/// its exclusive-lock ablation) executed by real threads.
pub struct LiveCeiling {
    gate: Mutex<Gate>,
}

impl std::fmt::Debug for LiveCeiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveCeiling").finish_non_exhaustive()
    }
}

impl LiveCeiling {
    /// A fresh gate with read/write semantics (`exclusive = false`) or
    /// the §5 exclusive-lock ablation.
    pub fn new(exclusive: bool) -> Self {
        let mut proto = if exclusive {
            PriorityCeilingProtocol::exclusive()
        } else {
            PriorityCeilingProtocol::read_write()
        };
        proto.set_tracing(true);
        LiveCeiling {
            gate: Mutex::new(Gate {
                proto,
                slots: FxHashMap::default(),
                drained: Vec::new(),
            }),
        }
    }

    /// Registers an arriving transaction's declared access sets (which
    /// raise the per-object ceilings, exactly as in the simulator).
    pub fn register(&self, rec: &Recorder, log: &mut ThreadLog, spec: &TxnSpec) {
        let mut g = self.gate.lock().unwrap();
        g.proto.register(spec);
        g.drain(rec, log);
    }

    /// Requests `mode` on `object`, blocking until admitted or
    /// `deadline`. Wall ticks spent parked accumulate into
    /// `blocked_ticks`.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire(
        &self,
        rec: &Recorder,
        log: &mut ThreadLog,
        txn: TxnId,
        object: ObjectId,
        mode: LockMode,
        deadline: Instant,
        blocked_ticks: &mut u64,
    ) -> Acquire {
        let slot;
        {
            let mut g = self.gate.lock().unwrap();
            let result = g.proto.request(txn, object, mode);
            g.drain(rec, log);
            match result.outcome {
                RequestOutcome::Granted => return Acquire::Granted,
                RequestOutcome::Blocked { .. } => {
                    slot = WaitSlot::new();
                    g.slots.insert(txn, slot.clone());
                }
                RequestOutcome::Deadlock { .. } => {
                    unreachable!("ceiling admission is deadlock-free")
                }
            }
        }
        let wait_started = rec.now_ticks();
        let outcome = wait_until(&slot, deadline);
        *blocked_ticks += rec.now_ticks().saturating_sub(wait_started);
        match outcome {
            WaitState::Granted => Acquire::Granted,
            WaitState::Victim => unreachable!("the ceiling gate poisons no victims"),
            WaitState::Waiting => {
                // Timed out. Under the gate, either a racing wake already
                // granted us (we own the lock; the caller's deadline check
                // will release it via finish), or the request is still
                // queued — leave it for finish() to retract.
                let mut g = self.gate.lock().unwrap();
                g.slots.remove(&txn);
                match slot.settled() {
                    WaitState::Granted => Acquire::Granted,
                    _ => Acquire::Timeout,
                }
            }
        }
    }

    /// Releases everything `txn` holds or awaits and retires it from the
    /// active set (lowering ceilings), then grants and wakes whichever
    /// parked entrants the release admits.
    pub fn finish(&self, rec: &Recorder, log: &mut ThreadLog, txn: TxnId) {
        let mut g = self.gate.lock().unwrap();
        let result = g.proto.release_all(txn, ReleaseReason::Finished);
        g.drain(rec, log);
        g.slots.remove(&txn);
        for w in result.wakeups {
            if let Some(slot) = g.slots.remove(&w.txn) {
                slot.wake(WaitState::Granted);
            }
        }
    }

    /// Requests denied by the ceiling test so far.
    pub fn ceiling_blocks(&self) -> u64 {
        self.gate.lock().unwrap().proto.ceiling_block_count()
    }

    /// Panics unless the protocol is completely idle and internally
    /// consistent — the quiescent post-run state the stress tests assert.
    pub fn assert_idle(&self) {
        let g = self.gate.lock().unwrap();
        g.proto.assert_consistent();
        g.proto.assert_idle();
        assert!(g.slots.is_empty(), "{} slots still parked", g.slots.len());
    }
}

//! Event stamping for wall-clock runs.
//!
//! The simulator hands `monitor::CheckSink` a totally ordered event
//! stream for free — there is one clock and one event loop. A
//! real-threads run has neither, so ordering is reconstructed from a
//! global atomic **sequence counter**: every recorded event takes
//! `seq = SEQ.fetch_add(1)` at the moment it logically happens, and
//! lock-state events take it *inside* the bucket (or ceiling-gate)
//! critical section that performs the state change. Atomic RMWs on one
//! cell form a single modification order, so any event that
//! happens-after another gets a larger sequence number; sorting the
//! merged per-thread buffers by `seq` therefore yields a linearization
//! consistent with every lock table's actual history — exactly what the
//! oracle's invariants quantify over.
//!
//! Timestamps ride along for the metrics sinks: nanoseconds since run
//! start, divided down to simulated "ticks" (1 µs). Wall clocks are not
//! guaranteed monotonic *across* the seq order (a thread can read its
//! clock, lose the CPU, then stamp), so [`Recorder::merge`] clamps
//! timestamps to be non-decreasing in sequence order — the invariant
//! every trace consumer assumes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitor::{SimEvent, SimEventKind};
use rtdb::SiteId;
use starlite::SimTime;

/// Nanoseconds per simulated tick in recorded live traces (1 tick = 1 µs,
/// so blocked-time percentiles read in microseconds).
pub const TICK_NS: u64 = 1_000;

/// Shared stamping state: one per run.
#[derive(Debug)]
pub struct Recorder {
    seq: AtomicU64,
    start: Instant,
}

impl Recorder {
    /// A fresh recorder; `start` is "tick 0" for every thread.
    pub fn new() -> Self {
        Recorder {
            seq: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Takes the next global sequence number and the current tick count.
    /// Call inside the critical section that performs the state change
    /// the event describes.
    pub fn stamp(&self) -> (u64, u64) {
        // Relaxed is enough: RMWs on one atomic have a total modification
        // order, and the surrounding mutexes provide the happens-before
        // edges that make that order agree with program order.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        (seq, self.now_ticks())
    }

    /// Ticks elapsed since the run started.
    pub fn now_ticks(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64 / TICK_NS
    }

    /// Merges per-thread buffers into one stream ordered by sequence
    /// number, with timestamps clamped monotone non-decreasing. All
    /// events carry `SiteId(0)`: a live run is one logical site.
    pub fn merge(logs: Vec<ThreadLog>) -> Vec<(SimTime, SimEvent)> {
        let mut all: Vec<(u64, u64, SimEventKind)> =
            logs.into_iter().flat_map(|l| l.events).collect();
        all.sort_unstable_by_key(|&(seq, _, _)| seq);
        let mut floor = 0u64;
        all.into_iter()
            .map(|(_, ticks, kind)| {
                floor = floor.max(ticks);
                (SimTime::from_ticks(floor), SimEvent::new(SiteId(0), kind))
            })
            .collect()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// One worker thread's event buffer. Never shared: the thread that
/// performs a state change records it, even when the event describes
/// another transaction (a releaser records the grants it hands out).
#[derive(Debug, Default)]
pub struct ThreadLog {
    events: Vec<(u64, u64, SimEventKind)>,
}

impl ThreadLog {
    /// An empty buffer.
    pub fn new() -> Self {
        ThreadLog { events: Vec::new() }
    }

    /// Records `kind` with a fresh stamp from `rec`.
    pub fn record(&mut self, rec: &Recorder, kind: SimEventKind) {
        let (seq, ticks) = rec.stamp();
        self.events.push((seq, ticks, kind));
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb::TxnId;

    #[test]
    fn merge_orders_by_seq_and_clamps_timestamps() {
        let rec = Recorder::new();
        let mut a = ThreadLog::new();
        let mut b = ThreadLog::new();
        a.record(&rec, SimEventKind::TxnStarted { txn: TxnId(1) });
        b.record(&rec, SimEventKind::TxnStarted { txn: TxnId(2) });
        a.record(&rec, SimEventKind::TxnCommitted { txn: TxnId(1) });
        // Forge a timestamp regression: seq order must win and the
        // merged timestamps stay non-decreasing.
        b.events.push((
            a.events.last().unwrap().0 + 1,
            0, // "before the run started"
            SimEventKind::TxnCommitted { txn: TxnId(2) },
        ));
        let merged = Recorder::merge(vec![a, b]);
        assert_eq!(merged.len(), 4);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(matches!(
            merged[3].1.kind,
            SimEventKind::TxnCommitted { txn: TxnId(2) }
        ));
    }
}

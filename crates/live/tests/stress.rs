//! Seeded multi-thread stress tests for the live lock manager.
//!
//! Three layers of evidence that grant / upgrade / release are sound
//! under real concurrency:
//!
//! 1. **Direct table pounding** — worker threads hammer a tiny object
//!    set through [`LiveTable`] with generous deadlines. Mutual
//!    exclusion is witnessed by non-atomic counters that only write-lock
//!    exclusivity keeps exact; completion itself witnesses the absence
//!    of lost wakeups (a dropped grant would strand a waiter until its
//!    multi-second deadline and trip the grant-count assertions).
//! 2. **Full runs through the oracle** — every protocol's merged event
//!    stream replays through `CheckSink`, whose lock-compatibility check
//!    rejects double grants and whose finish pass rejects leftover
//!    waiters (lost wakeups) and leftover holders (leaked locks).
//! 3. **Store consistency** — the runner's shared store must match the
//!    committed write sets exactly.
//!
//! Everything is seeded: thread interleavings vary, but the workloads
//! and decision points are deterministic functions of the seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use monitor::{CheckConfig, CheckSink};
use rtdb::{LockMode, ObjectId, TxnId};
use rtlock_live::runner::{run_live, LiveConfig, LiveProtocol};
use rtlock_live::table::{Acquire, LiveQueue, LiveTable};
use rtlock_live::{Recorder, ThreadLog};
use starlite::{EventSink, Priority};

/// Tiny deterministic generator (splitmix64) for per-thread decisions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Replays a live report through the oracle and asserts zero violations.
fn assert_oracle_clean(report: &rtlock_live::LiveReport, ceiling: bool) {
    let mut sink = CheckSink::new(CheckConfig::live(ceiling));
    for &(at, event) in &report.events {
        sink.emit(at, event);
    }
    let violations = sink.finish();
    assert!(
        violations.is_empty(),
        "{}: {} oracle violations, first: {:?}",
        report.protocol,
        violations.len(),
        violations.first()
    );
}

#[test]
fn direct_table_write_contention_has_no_double_grants() {
    // 8 threads × 60 iterations over 4 objects, all write locks, FIFO
    // queues: every grant enters a non-atomic increment on its object's
    // cell. Any double grant loses an increment; any lost wakeup strands
    // a thread until the 30 s deadline and desyncs the counts too.
    const THREADS: u64 = 8;
    const ITERS: u64 = 60;
    const OBJECTS: u64 = 4;
    let table = LiveTable::new(LiveQueue::Fifo, false);
    let rec = Recorder::new();
    let cells: Vec<AtomicU64> = (0..OBJECTS).map(|_| AtomicU64::new(0)).collect();
    let granted: Vec<AtomicU64> = (0..OBJECTS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let table = &table;
            let rec = &rec;
            let cells = &cells;
            let granted = &granted;
            scope.spawn(move || {
                let mut log = ThreadLog::new();
                let mut rng = Rng(0xA11CE + t);
                let deadline = Instant::now() + Duration::from_secs(30);
                for i in 0..ITERS {
                    let txn = TxnId(1 + t * ITERS + i);
                    table.register(txn, Priority::new(0));
                    let object = ObjectId((rng.next() % OBJECTS) as u32);
                    let mut blocked = 0u64;
                    match table.acquire(
                        rec,
                        &mut log,
                        txn,
                        object,
                        LockMode::Write,
                        deadline,
                        &mut blocked,
                    ) {
                        Acquire::Granted => {
                            granted[object.0 as usize].fetch_add(1, Ordering::Relaxed);
                            let cell = &cells[object.0 as usize];
                            let v = cell.load(Ordering::Relaxed);
                            std::hint::spin_loop();
                            cell.store(v + 1, Ordering::Relaxed);
                            table.release_all(rec, &mut log, txn, &[(object, LockMode::Write)]);
                        }
                        other => panic!("unexpected outcome {other:?} for {txn}"),
                    }
                    table.deregister(txn);
                }
            });
        }
    });

    assert!(table.idle(), "table not idle after drain");
    for (i, (cell, g)) in cells.iter().zip(&granted).enumerate() {
        assert_eq!(
            cell.load(Ordering::Relaxed),
            g.load(Ordering::Relaxed),
            "object {i}: lost update — write locks were not exclusive"
        );
    }
}

#[test]
fn direct_table_upgrades_are_exclusive() {
    // Threads read-lock the single object, then upgrade to write. The
    // upgrade must wait out every co-reader, so the non-atomic counter
    // stays exact. Deadlocked upgrade pairs (both readers want write)
    // are poisoned; victims release and retry.
    const THREADS: u64 = 6;
    const ITERS: u64 = 40;
    let table = LiveTable::new(LiveQueue::Fifo, false);
    let rec = Recorder::new();
    let cell = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let object = ObjectId(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let table = &table;
            let rec = &rec;
            let cell = &cell;
            let commits = &commits;
            scope.spawn(move || {
                let mut log = ThreadLog::new();
                let deadline = Instant::now() + Duration::from_secs(30);
                for i in 0..ITERS {
                    let txn = TxnId(1 + t * ITERS + i);
                    table.register(txn, Priority::new(t as i64));
                    loop {
                        let mut blocked = 0u64;
                        let read = table.acquire(
                            rec,
                            &mut log,
                            txn,
                            object,
                            LockMode::Read,
                            deadline,
                            &mut blocked,
                        );
                        assert!(
                            matches!(read, Acquire::Granted | Acquire::Deadlock),
                            "read acquire returned {read:?}"
                        );
                        if read == Acquire::Deadlock {
                            table.release_all(rec, &mut log, txn, &[]);
                            table.reset_priority(txn);
                            continue;
                        }
                        match table.acquire(
                            rec,
                            &mut log,
                            txn,
                            object,
                            LockMode::Write,
                            deadline,
                            &mut blocked,
                        ) {
                            Acquire::Granted => {
                                let v = cell.load(Ordering::Relaxed);
                                std::hint::spin_loop();
                                cell.store(v + 1, Ordering::Relaxed);
                                commits.fetch_add(1, Ordering::Relaxed);
                                table.release_all(rec, &mut log, txn, &[(object, LockMode::Write)]);
                                break;
                            }
                            Acquire::Deadlock => {
                                // Two upgraders deadlocked; this one was
                                // poisoned. Release the read lock and retry.
                                table.release_all(rec, &mut log, txn, &[(object, LockMode::Read)]);
                                table.reset_priority(txn);
                            }
                            Acquire::Timeout => panic!("upgrade timed out under 30 s deadline"),
                        }
                    }
                    table.deregister(txn);
                }
            });
        }
    });

    assert!(table.idle(), "table not idle after drain");
    assert_eq!(
        cell.load(Ordering::Relaxed),
        commits.load(Ordering::Relaxed),
        "lost update through a non-exclusive upgrade"
    );
    assert_eq!(commits.load(Ordering::Relaxed), THREADS * ITERS);
}

#[test]
fn deadlocks_are_detected_and_victims_released() {
    // Two threads lock (A then B) and (B then A) repeatedly with long
    // deadlines: timeouts can't resolve the cycles, so only detection
    // can. The run finishing at all proves every cycle was broken and
    // the victim's departure woke the survivor.
    let table = LiveTable::new(LiveQueue::Fifo, false);
    let rec = Recorder::new();
    let a = ObjectId(0);
    let b = ObjectId(1);
    const ITERS: u64 = 50;

    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let table = &table;
            let rec = &rec;
            scope.spawn(move || {
                let mut log = ThreadLog::new();
                let deadline = Instant::now() + Duration::from_secs(60);
                let (first, second) = if t == 0 { (a, b) } else { (b, a) };
                for i in 0..ITERS {
                    let txn = TxnId(1 + t * ITERS + i);
                    table.register(txn, Priority::new(t as i64));
                    'txn: loop {
                        let mut blocked = 0u64;
                        let mut held: Vec<(ObjectId, LockMode)> = Vec::new();
                        for obj in [first, second] {
                            match table.acquire(
                                rec,
                                &mut log,
                                txn,
                                obj,
                                LockMode::Write,
                                deadline,
                                &mut blocked,
                            ) {
                                Acquire::Granted => held.push((obj, LockMode::Write)),
                                Acquire::Deadlock => {
                                    table.release_all(rec, &mut log, txn, &held);
                                    table.reset_priority(txn);
                                    continue 'txn;
                                }
                                Acquire::Timeout => panic!("timeout under 60 s deadline"),
                            }
                        }
                        table.release_all(rec, &mut log, txn, &held);
                        break 'txn;
                    }
                    table.deregister(txn);
                }
            });
        }
    });

    assert!(table.idle(), "table not idle after drain");
    // With opposed lock orders and 50 rounds each, at least one cycle is
    // all but certain — but the assertion that matters is completion and
    // idleness above; the count is informational.
    let _ = table.deadlocks();
}

#[test]
fn all_live_protocols_pass_the_oracle_at_four_threads() {
    for protocol in LiveProtocol::all() {
        let config = LiveConfig::smoke(protocol, 4);
        let report = run_live(&config);
        assert_eq!(
            report.processed, config.txn_count,
            "{}: not every transaction reached a terminal event",
            report.protocol
        );
        assert!(
            report.store_consistent,
            "{}: store diverged from committed write sets",
            report.protocol
        );
        assert!(
            report.committed > 0,
            "{}: nothing committed in the smoke run",
            report.protocol
        );
        assert_oracle_clean(&report, protocol.is_ceiling());
    }
}

#[test]
fn heavy_contention_run_stays_oracle_clean() {
    // A deliberately vicious configuration: 8 objects, size-4 updates,
    // 8 threads, long holds — deadlock city for 2PL. The oracle must
    // still find a perfectly consistent lock history, and the store
    // must match the commits exactly.
    let mut config = LiveConfig::new(LiveProtocol::TwoPhase, 8);
    config.db_size = 8;
    config.txn_size = 4;
    config.txn_count = 200;
    config.hold_us = 10;
    config.seed = 42;
    let report = run_live(&config);
    assert_eq!(report.processed, config.txn_count);
    assert!(report.store_consistent, "store diverged under contention");
    assert_oracle_clean(&report, false);
}

#[test]
fn priority_inheritance_run_emits_and_survives_donations() {
    let mut config = LiveConfig::new(LiveProtocol::Inheritance, 6);
    config.db_size = 16;
    config.txn_size = 4;
    config.txn_count = 150;
    config.hold_us = 15;
    config.seed = 11;
    let report = run_live(&config);
    assert_eq!(report.processed, config.txn_count);
    assert!(report.store_consistent);
    assert_oracle_clean(&report, false);
}

#[test]
fn ceiling_run_is_deadlock_free_under_contention() {
    let mut config = LiveConfig::new(LiveProtocol::Ceiling, 6);
    config.db_size = 16;
    config.txn_size = 4;
    config.txn_count = 150;
    config.hold_us = 15;
    config.seed = 3;
    let report = run_live(&config);
    assert_eq!(report.processed, config.txn_count);
    assert_eq!(report.deadlocks, 0, "PCP must be deadlock-free");
    assert!(report.store_consistent);
    // ceiling=true keeps the deadlock-freedom and WFG checks armed.
    assert_oracle_clean(&report, true);
}

#[test]
fn single_thread_run_matches_the_simulated_invariants_exactly() {
    // One worker is the degenerate case closest to the simulator: no
    // real concurrency, so even blocked-at-most-once could hold — the
    // multicore waiver must not be *needed*, merely tolerated.
    for protocol in LiveProtocol::all() {
        let mut config = LiveConfig::smoke(protocol, 1);
        config.txn_count = 60;
        let report = run_live(&config);
        assert_eq!(report.processed, 60, "{}", report.protocol);
        assert_eq!(
            report.restarts, 0,
            "{}: deadlock with one thread",
            report.protocol
        );
        assert!(report.store_consistent);
        assert_oracle_clean(&report, protocol.is_ceiling());
    }
}

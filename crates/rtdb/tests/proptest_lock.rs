//! Property-based tests of the lock table and waits-for graph.

use std::collections::HashSet;

use proptest::prelude::*;
use rtdb::{LockMode, LockOutcome, LockTable, ObjectId, QueuePolicy, TxnId, WaitsForGraph};
use starlite::Priority;

#[derive(Debug, Clone)]
enum LockOp {
    Request {
        txn: u8,
        obj: u8,
        write: bool,
        priority: i64,
    },
    ReleaseAll {
        txn: u8,
    },
}

fn lock_op_strategy() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        3 => (0u8..8, 0u8..5, any::<bool>(), -4i64..4).prop_map(|(txn, obj, write, priority)| {
            LockOp::Request { txn, obj, write, priority }
        }),
        1 => (0u8..8).prop_map(|txn| LockOp::ReleaseAll { txn }),
    ]
}

fn run_ops(policy: QueuePolicy, ops: &[LockOp]) -> LockTable {
    let mut table = LockTable::new(policy);
    let mut waiting: HashSet<TxnId> = HashSet::new();
    for op in ops {
        match *op {
            LockOp::Request {
                txn,
                obj,
                write,
                priority,
            } => {
                let txn = TxnId(txn as u64);
                if waiting.contains(&txn) {
                    continue; // blocked transactions cannot issue requests
                }
                let mode = if write {
                    LockMode::Write
                } else {
                    LockMode::Read
                };
                match table.request(txn, ObjectId(obj as u32), mode, Priority::new(priority)) {
                    LockOutcome::Granted => {}
                    LockOutcome::Waiting { .. } => {
                        waiting.insert(txn);
                    }
                }
            }
            LockOp::ReleaseAll { txn } => {
                let txn = TxnId(txn as u64);
                waiting.remove(&txn);
                for woken in table.release_all(txn) {
                    waiting.remove(&woken.txn);
                }
            }
        }
        table.check_invariants();
    }
    table
}

proptest! {
    /// The lock table never grants incompatible locks and keeps its
    /// bookkeeping consistent under arbitrary request/release sequences.
    #[test]
    fn lock_table_invariants_hold(
        fifo in any::<bool>(),
        ops in prop::collection::vec(lock_op_strategy(), 1..80),
    ) {
        let policy = if fifo { QueuePolicy::Fifo } else { QueuePolicy::Priority };
        run_ops(policy, &ops);
    }

    /// No waiter is lost: releasing every transaction leaves the table
    /// empty of holders and waiters.
    #[test]
    fn releasing_everyone_drains_the_table(
        fifo in any::<bool>(),
        ops in prop::collection::vec(lock_op_strategy(), 1..80),
    ) {
        let policy = if fifo { QueuePolicy::Fifo } else { QueuePolicy::Priority };
        let mut table = run_ops(policy, &ops);
        // Release all transactions repeatedly (wakeups may re-grant, so a
        // woken transaction must be released again).
        for _ in 0..3 {
            for t in 0..8u64 {
                table.release_all(TxnId(t));
            }
        }
        table.check_invariants();
        for t in 0..8u64 {
            prop_assert!(table.held_objects(TxnId(t)).is_empty());
            prop_assert!(table.waiting_for(TxnId(t)).is_none());
        }
        for o in 0..5u32 {
            prop_assert!(table.holders(ObjectId(o)).is_empty());
        }
    }

    /// Cycle detection agrees with a naive reachability check on random
    /// graphs.
    #[test]
    fn wfg_cycle_detection_matches_naive(
        edges in prop::collection::vec((0u64..10, 0u64..10), 0..40),
    ) {
        let mut g = WaitsForGraph::new();
        for &(a, b) in &edges {
            g.add_edges(TxnId(a), &[TxnId(b)]);
        }
        // Naive check: DFS from every node over the raw edge list.
        let naive_cycle = {
            let mut found = false;
            'outer: for start in 0..10u64 {
                // Path-based DFS.
                let mut stack = vec![(start, vec![start])];
                let mut visited_paths = 0;
                while let Some((node, path)) = stack.pop() {
                    visited_paths += 1;
                    if visited_paths > 100_000 {
                        break; // safety valve; graphs are tiny
                    }
                    for &(a, b) in &edges {
                        if a != node || a == b {
                            continue;
                        }
                        if path.contains(&b) {
                            found = true;
                            break 'outer;
                        }
                        let mut p = path.clone();
                        p.push(b);
                        stack.push((b, p));
                    }
                }
            }
            found
        };
        prop_assert_eq!(g.has_any_cycle(), naive_cycle);
    }
}

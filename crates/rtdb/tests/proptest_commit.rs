//! Property-based tests of the two-phase commit state machines.

use proptest::prelude::*;
use rtdb::{Coordinator, CoordinatorAction, Participant, ParticipantAction, SiteId, TxnId, Vote};

proptest! {
    /// For any participant set, any vote assignment, and any delivery
    /// order (with duplicates), the coordinator decides commit iff every
    /// participant voted yes, and reaches `Done` after all acks.
    #[test]
    fn two_phase_commit_is_atomic_under_any_delivery_order(
        sites in 1usize..6,
        yes_mask in prop::collection::vec(any::<bool>(), 6),
        order in prop::collection::vec(0usize..6, 0..24),
    ) {
        let participants: Vec<SiteId> = (0..sites as u8).map(SiteId).collect();
        let mut coordinator = Coordinator::new(TxnId(1), participants.clone());
        match coordinator.start() {
            CoordinatorAction::SendPrepare(to) => prop_assert_eq!(to.len(), sites),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        let mut locals: Vec<Participant> = participants
            .iter()
            .map(|&_s| Participant::new(TxnId(1)))
            .collect();
        // Each participant votes (its local verdict from yes_mask).
        let votes: Vec<Vote> = (0..sites)
            .map(|i| match locals[i].on_prepare(yes_mask[i]) {
                ParticipantAction::Reply(v) => v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let all_yes = (0..sites).all(|i| yes_mask[i]);

        // Deliver votes in an arbitrary order with duplicates, using
        // `order` indices mapped into range; ensure every vote is
        // eventually delivered by appending the full set.
        let mut decision: Option<bool> = None;
        let deliveries: Vec<usize> = order
            .into_iter()
            .map(|i| i % sites)
            .chain(0..sites)
            .collect();
        for i in deliveries {
            if let Some(action) = coordinator.on_vote(participants[i], votes[i]) {
                match action {
                    CoordinatorAction::SendCommit(_) => decision = Some(true),
                    CoordinatorAction::SendAbort(_) => decision = Some(false),
                    other => prop_assert!(false, "unexpected {other:?}"),
                }
            }
        }
        prop_assert_eq!(decision, Some(all_yes), "wrong or missing decision");

        // Phase two: every participant applies the decision and acks
        // (twice — duplicates must be ignored).
        let mut done = None;
        for round in 0..2 {
            for i in 0..sites {
                if round == 0 {
                    // A participant that voted No already aborted; it only
                    // receives an abort decision.
                    if yes_mask[i] {
                        let action = locals[i].on_decision(all_yes);
                        if all_yes {
                            prop_assert_eq!(action, ParticipantAction::CommitAndAck);
                        } else {
                            prop_assert_eq!(action, ParticipantAction::AbortAndAck);
                        }
                    } else {
                        prop_assert_eq!(
                            locals[i].on_decision(false),
                            ParticipantAction::AbortAndAck
                        );
                    }
                }
                if let Some(a) = coordinator.on_ack(participants[i]) {
                    prop_assert!(done.is_none(), "Done reported twice");
                    done = Some(a);
                }
            }
        }
        match done {
            Some(CoordinatorAction::Done { committed }) => {
                prop_assert_eq!(committed, all_yes);
            }
            other => prop_assert!(false, "no Done: {other:?}"),
        }
        // Local outcomes agree with the global decision: yes-voters adopt
        // it, no-voters are aborted regardless.
        for (i, p) in locals.iter().enumerate() {
            let expected = if yes_mask[i] { all_yes } else { false };
            prop_assert_eq!(p.outcome(), Some(expected));
        }
    }

    /// A vote timeout during collection always decides abort, and late
    /// votes are ignored.
    #[test]
    fn timeout_aborts_safely(
        sites in 1usize..6,
        votes_before_timeout in 0usize..6,
    ) {
        let participants: Vec<SiteId> = (0..sites as u8).map(SiteId).collect();
        let mut c = Coordinator::new(TxnId(1), participants.clone());
        c.start();
        let early = votes_before_timeout.min(sites.saturating_sub(1));
        for &p in participants.iter().take(early) {
            prop_assert!(c.on_vote(p, Vote::Yes).is_none());
        }
        match c.on_vote_timeout() {
            Some(CoordinatorAction::SendAbort(_)) => {}
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        // Stragglers are ignored.
        for &p in &participants {
            prop_assert!(c.on_vote(p, Vote::Yes).is_none());
        }
        // Acks complete the abort.
        let mut done = false;
        for &p in &participants {
            if let Some(CoordinatorAction::Done { committed }) = c.on_ack(p) {
                prop_assert!(!committed);
                done = true;
            }
        }
        prop_assert!(done);
    }
}

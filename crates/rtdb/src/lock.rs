//! A read/write lock table with FIFO or priority wait queues.
//!
//! This is the Resource Manager's synchronisation core for the two-phase
//! locking protocols ("L" and "P" in the paper). Transactions request locks
//! one at a time (growing phase), may upgrade read locks to write locks,
//! and release everything at commit or abort (shrinking phase happens in
//! one step, as the paper's transactions hold all locks to completion).
//!
//! Two queue disciplines are provided:
//!
//! * [`QueuePolicy::Fifo`] — strict arrival order; a compatible request
//!   still waits behind queued conflicting requests ("2PL without priority
//!   mode").
//! * [`QueuePolicy::Priority`] — the wait queue is served most-urgent
//!   first, and an arriving request may bypass less urgent waiters ("2PL
//!   with priority mode").
//!
//! The table reports, for every blocked request, the set of transactions it
//! waits for — the edges fed into the [waits-for graph](crate::wfg) for
//! deadlock detection.
//!
//! # Example
//!
//! ```
//! use rtdb::{LockTable, LockMode, LockOutcome, QueuePolicy, TxnId, ObjectId};
//! use starlite::Priority;
//!
//! let mut lt = LockTable::new(QueuePolicy::Priority);
//! let o = ObjectId(0);
//! assert_eq!(lt.request(TxnId(1), o, LockMode::Write, Priority::new(1)), LockOutcome::Granted);
//! match lt.request(TxnId(2), o, LockMode::Read, Priority::new(5)) {
//!     LockOutcome::Waiting { blockers } => assert_eq!(blockers, vec![TxnId(1)]),
//!     other => panic!("expected wait, got {other:?}"),
//! }
//! let woken = lt.release_all(TxnId(1));
//! assert_eq!(woken.len(), 1);
//! assert_eq!(woken[0].txn, TxnId(2));
//! ```

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};
use starlite::{FxHashMap, FxHashSet, Priority};

use crate::ids::{ObjectId, TxnId};
use crate::small::InlineVec;

/// Lock modes with the usual compatibility: reads share, writes exclude.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared access.
    #[default]
    Read,
    /// Exclusive access.
    Write,
}

impl LockMode {
    /// Whether two locks may be held simultaneously by different
    /// transactions.
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Read && other == LockMode::Read
    }
}

/// Wait-queue discipline of a [`LockTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Strict arrival order; no bypassing.
    Fifo,
    /// Most urgent waiter first; arrivals may bypass less urgent waiters.
    Priority,
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request queued; `blockers` are the transactions it waits for
    /// (conflicting holders plus conflicting waiters served earlier).
    Waiting {
        /// Transactions this request waits for, for deadlock detection.
        blockers: Vec<TxnId>,
    },
}

/// One journalled lock-table happening (see [`LockTable::set_tracing`]).
///
/// The table has no notion of simulation time, so entries are unstamped;
/// the simulation model drains the journal immediately after each table
/// call and stamps the entries with the current instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockEvent {
    /// `txn` asked for `mode` on `object`.
    Requested {
        /// Requesting transaction.
        txn: TxnId,
        /// Requested object.
        object: ObjectId,
        /// Requested mode.
        mode: LockMode,
    },
    /// The request was granted — immediately, or later by a release pass.
    Granted {
        /// Transaction now holding the lock.
        txn: TxnId,
        /// The locked object.
        object: ObjectId,
        /// The granted mode.
        mode: LockMode,
    },
    /// The request queued behind a conflict.
    Blocked {
        /// The waiting transaction.
        txn: TxnId,
        /// The contended object.
        object: ObjectId,
        /// The mode it wants.
        mode: LockMode,
        /// One representative blocker (the first reported), if any.
        blocker: Option<TxnId>,
    },
    /// `txn`'s lock on `object` was released.
    Released {
        /// The releasing transaction.
        txn: TxnId,
        /// The object released.
        object: ObjectId,
    },
    /// A read lock became a write lock (in place or via the queue).
    Upgraded {
        /// The upgrading transaction.
        txn: TxnId,
        /// The upgraded object.
        object: ObjectId,
    },
}

/// A lock granted during a release pass; the caller resumes this
/// transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedLock {
    /// The transaction whose request was granted.
    pub txn: TxnId,
    /// The object now locked.
    pub object: ObjectId,
    /// The granted mode.
    pub mode: LockMode,
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    priority: Priority,
    seq: u64,
    /// `true` when the waiter already holds a read lock and wants write.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct ObjectLock {
    /// Holders stay inline for up to four concurrent readers — the common
    /// case allocates nothing on first lock.
    holders: InlineVec<(TxnId, LockMode), 4>,
    queue: VecDeque<Waiter>,
}

impl ObjectLock {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    /// Allocation-free conflict test for the grant fast path.
    fn has_holder_conflict(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .any(|&(t, m)| t != txn && !m.compatible(mode))
    }

    /// Appends the conflicting holders to `out` (callers own the buffer, so
    /// the hot path can reuse one).
    fn conflicts_into(&self, txn: TxnId, mode: LockMode, out: &mut Vec<TxnId>) {
        out.extend(
            self.holders
                .iter()
                .filter(|&&(t, m)| t != txn && !m.compatible(mode))
                .map(|&(t, _)| t),
        );
    }
}

/// The lock table of one site.
///
/// See the [module documentation](self) for semantics and an example.
pub struct LockTable {
    policy: QueuePolicy,
    locks: FxHashMap<ObjectId, ObjectLock>,
    held_by: FxHashMap<TxnId, FxHashSet<ObjectId>>,
    waiting_on: FxHashMap<TxnId, ObjectId>,
    next_seq: u64,
    grants: u64,
    waits: u64,
    upgrades: u64,
    /// Reused by [`LockTable::release_all`] for the affected-object list, so
    /// the per-commit release path stops allocating once warm.
    scratch_objs: Vec<ObjectId>,
    trace: bool,
    journal: Vec<LockEvent>,
}

impl fmt::Debug for LockTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockTable")
            .field("policy", &self.policy)
            .field("locked_objects", &self.locks.len())
            .field("grants", &self.grants)
            .field("waits", &self.waits)
            .finish()
    }
}

impl LockTable {
    /// Creates an empty lock table with the given queue discipline.
    pub fn new(policy: QueuePolicy) -> Self {
        LockTable {
            policy,
            locks: FxHashMap::default(),
            held_by: FxHashMap::default(),
            waiting_on: FxHashMap::default(),
            next_seq: 0,
            grants: 0,
            waits: 0,
            upgrades: 0,
            scratch_objs: Vec::new(),
            trace: false,
            journal: Vec::new(),
        }
    }

    /// Turns journalling of grants, waits, upgrades and releases on or off.
    /// Off by default; with tracing off the journal stays empty and request
    /// paths pay one predictable branch.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    /// Moves all journalled entries into `out` (appending), oldest first.
    /// A no-op when tracing is off.
    pub fn drain_journal(&mut self, out: &mut Vec<LockEvent>) {
        out.append(&mut self.journal);
    }

    /// Requests `mode` on `object` for `txn` at `priority`.
    ///
    /// Re-requesting a mode already covered by a held lock (read under
    /// write, or repeat requests) is granted immediately. A read-to-write
    /// upgrade is granted when `txn` is the sole holder and the discipline
    /// permits, and queues otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `txn` is already waiting for some lock — transactions
    /// request locks one at a time.
    pub fn request(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        mode: LockMode,
        priority: Priority,
    ) -> LockOutcome {
        assert!(
            !self.waiting_on.contains_key(&txn),
            "{txn} requested a lock while already waiting"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.trace {
            self.journal
                .push(LockEvent::Requested { txn, object, mode });
        }

        let state = self.locks.entry(object).or_default();
        match state.holder_mode(txn) {
            Some(LockMode::Write) => {
                // Write covers everything.
                self.grants += 1;
                if self.trace {
                    self.journal.push(LockEvent::Granted { txn, object, mode });
                }
                return LockOutcome::Granted;
            }
            Some(LockMode::Read) if mode == LockMode::Read => {
                self.grants += 1;
                if self.trace {
                    self.journal.push(LockEvent::Granted { txn, object, mode });
                }
                return LockOutcome::Granted;
            }
            Some(LockMode::Read) => {
                // Upgrade request.
                if !state.has_holder_conflict(txn, LockMode::Write) {
                    for h in state.holders.iter_mut() {
                        if h.0 == txn {
                            h.1 = LockMode::Write;
                        }
                    }
                    self.grants += 1;
                    self.upgrades += 1;
                    if self.trace {
                        self.journal.push(LockEvent::Upgraded { txn, object });
                    }
                    return LockOutcome::Granted;
                }
                let mut others = Vec::new();
                state.conflicts_into(txn, LockMode::Write, &mut others);
                let waiter = Waiter {
                    txn,
                    mode: LockMode::Write,
                    priority,
                    seq,
                    upgrade: true,
                };
                // Upgrades go to the very front: the transaction already
                // holds a read lock, so nothing behind it can run anyway.
                state.queue.push_front(waiter);
                self.waiting_on.insert(txn, object);
                self.waits += 1;
                if self.trace {
                    self.journal.push(LockEvent::Blocked {
                        txn,
                        object,
                        mode: LockMode::Write,
                        blocker: others.first().copied(),
                    });
                }
                return LockOutcome::Waiting { blockers: others };
            }
            None => {}
        }

        // The request may be granted directly only if no waiter that would
        // be served before it conflicts with it. Under FIFO every queued
        // waiter is served first; under Priority only the more urgent ones.
        let can_bypass_queue = match self.policy {
            QueuePolicy::Fifo => state.queue.iter().all(|w| w.mode.compatible(mode)),
            QueuePolicy::Priority => state
                .queue
                .iter()
                .all(|w| w.priority < priority || w.mode.compatible(mode)),
        };
        if can_bypass_queue && !state.has_holder_conflict(txn, mode) {
            state.holders.push((txn, mode));
            self.held_by.entry(txn).or_default().insert(object);
            self.grants += 1;
            if self.trace {
                self.journal.push(LockEvent::Granted { txn, object, mode });
            }
            return LockOutcome::Granted;
        }

        // Blockers: conflicting holders plus conflicting waiters that will
        // be served before this request.
        let mut blockers = Vec::new();
        state.conflicts_into(txn, mode, &mut blockers);
        for w in &state.queue {
            let ahead = match self.policy {
                QueuePolicy::Fifo => true,
                QueuePolicy::Priority => {
                    w.priority > priority || (w.priority == priority && w.seq < seq)
                }
            };
            if ahead && !w.mode.compatible(mode) {
                blockers.push(w.txn);
            }
        }
        blockers.sort_unstable();
        blockers.dedup();

        state.queue.push_back(Waiter {
            txn,
            mode,
            priority,
            seq,
            upgrade: false,
        });
        self.waiting_on.insert(txn, object);
        self.waits += 1;
        if self.trace {
            self.journal.push(LockEvent::Blocked {
                txn,
                object,
                mode,
                blocker: blockers.first().copied(),
            });
        }
        LockOutcome::Waiting { blockers }
    }

    /// Releases every lock held or awaited by `txn` and wakes eligible
    /// waiters. Affected objects are processed in ascending id order; per
    /// object, waiters wake in discipline order (FIFO: arrival order;
    /// Priority: most urgent first, ties by arrival), except that a
    /// grantable read-to-write upgrade is always served first. Returns the
    /// requests granted by this release.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<GrantedLock> {
        let mut affected = std::mem::take(&mut self.scratch_objs);
        affected.clear();
        if let Some(objs) = self.held_by.remove(&txn) {
            for obj in objs {
                if let Some(state) = self.locks.get_mut(&obj) {
                    state.holders.retain(|(t, _)| *t != txn);
                }
                affected.push(obj);
            }
        }
        if self.trace {
            // `affected` holds exactly the released objects here (the
            // awaited one is appended below); journal them in id order so
            // the hash-map iteration above cannot leak into the trace.
            let mut released = affected.clone();
            released.sort_unstable();
            for object in released {
                self.journal.push(LockEvent::Released { txn, object });
            }
        }
        if let Some(obj) = self.waiting_on.remove(&txn) {
            if let Some(state) = self.locks.get_mut(&obj) {
                state.queue.retain(|w| w.txn != txn);
            }
            affected.push(obj);
        }
        affected.sort_unstable();
        affected.dedup();

        let mut granted = Vec::new();
        for &obj in &affected {
            self.grant_pass(obj, &mut granted);
        }
        self.scratch_objs = affected;
        granted
    }

    /// Updates the queue priority of a waiting transaction (used when a
    /// waiter inherits a higher priority through locks it holds elsewhere).
    /// No-op if `txn` is not waiting.
    pub fn update_waiter_priority(&mut self, txn: TxnId, priority: Priority) {
        if let Some(&obj) = self.waiting_on.get(&txn) {
            if let Some(state) = self.locks.get_mut(&obj) {
                if let Some(w) = state.queue.iter_mut().find(|w| w.txn == txn) {
                    w.priority = priority;
                }
            }
        }
    }

    /// The object `txn` is currently waiting for, if any.
    pub fn waiting_for(&self, txn: TxnId) -> Option<ObjectId> {
        self.waiting_on.get(&txn).copied()
    }

    /// All transactions currently waiting for some lock, sorted by id.
    pub fn waiters(&self) -> Vec<TxnId> {
        let mut v = Vec::new();
        self.waiters_into(&mut v);
        v
    }

    /// Like [`LockTable::waiters`], writing into a caller-owned buffer so
    /// periodic deadlock-detection passes can reuse one allocation.
    pub fn waiters_into(&self, out: &mut Vec<TxnId>) {
        out.clear();
        out.extend(self.waiting_on.keys().copied());
        out.sort_unstable();
    }

    /// The transactions currently blocking `txn` (empty when not waiting).
    /// This recomputes the same set [`LockTable::request`] reported, against
    /// the current table state.
    pub fn current_blockers(&self, txn: TxnId) -> Vec<TxnId> {
        let mut v = Vec::new();
        self.current_blockers_into(txn, &mut v);
        v
    }

    /// Like [`LockTable::current_blockers`], writing into a caller-owned
    /// buffer (cleared first) so waits-for-graph refreshes can reuse one.
    pub fn current_blockers_into(&self, txn: TxnId, out: &mut Vec<TxnId>) {
        out.clear();
        let Some(&obj) = self.waiting_on.get(&txn) else {
            return;
        };
        let Some(state) = self.locks.get(&obj) else {
            return;
        };
        let Some(me) = state.queue.iter().find(|w| w.txn == txn) else {
            return;
        };
        state.conflicts_into(txn, me.mode, out);
        // An upgrade waits only for the other holders: it is served before
        // any queued request, so counting queued writers here would inject
        // phantom waits-for edges (and spurious deadlock cycles).
        if !me.upgrade {
            for w in &state.queue {
                if w.txn == txn {
                    continue;
                }
                let ahead = match self.policy {
                    QueuePolicy::Fifo => w.seq < me.seq,
                    QueuePolicy::Priority => {
                        w.priority > me.priority || (w.priority == me.priority && w.seq < me.seq)
                    }
                };
                if ahead && !w.mode.compatible(me.mode) {
                    out.push(w.txn);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Mode held by `txn` on `object`, if any.
    pub fn held_mode(&self, txn: TxnId, object: ObjectId) -> Option<LockMode> {
        self.locks.get(&object).and_then(|s| s.holder_mode(txn))
    }

    /// All objects currently locked by `txn`.
    pub fn held_objects(&self, txn: TxnId) -> Vec<ObjectId> {
        self.held_by
            .get(&txn)
            .map(|s| {
                let mut v: Vec<ObjectId> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Current holders of `object` with their modes, as a borrowed view
    /// (the hot monitoring path must not clone the holder list).
    pub fn holders(&self, object: ObjectId) -> &[(TxnId, LockMode)] {
        self.locks
            .get(&object)
            .map(|s| s.holders.as_slice())
            .unwrap_or(&[])
    }

    /// Number of requests granted so far (including re-grants and upgrades).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Number of requests that had to wait.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Number of read-to-write upgrades granted in place.
    pub fn upgrade_count(&self) -> u64 {
        self.upgrades
    }

    /// Internal invariant check for tests: no two holders conflict, every
    /// holder set is consistent with `held_by`, and no granted transaction
    /// is also queued on the same object.
    pub fn check_invariants(&self) {
        for (obj, state) in &self.locks {
            for (i, &(t1, m1)) in state.holders.iter().enumerate() {
                for &(t2, m2) in &state.holders[i + 1..] {
                    assert!(t1 != t2, "duplicate holder {t1} on {obj}");
                    assert!(
                        m1.compatible(m2),
                        "incompatible holders {t1}:{m1:?} and {t2}:{m2:?} on {obj}"
                    );
                }
                assert!(
                    self.held_by.get(&t1).is_some_and(|s| s.contains(obj)),
                    "holder {t1} of {obj} missing from held_by"
                );
            }
            for w in &state.queue {
                assert!(
                    !state.holders.iter().any(|&(t, _)| t == w.txn) || w.upgrade,
                    "{} queued on {obj} while holding it (non-upgrade)",
                    w.txn
                );
                if w.upgrade {
                    assert_eq!(
                        state.holder_mode(w.txn),
                        Some(LockMode::Read),
                        "upgrade waiter {} does not hold a read lock on {obj}",
                        w.txn
                    );
                }
                assert_eq!(
                    self.waiting_on.get(&w.txn),
                    Some(obj),
                    "waiting_on out of sync for {}",
                    w.txn
                );
            }
        }
    }

    /// Wakes as many waiters of `object` as compatibility allows, in
    /// discipline order, except that an *eligible* upgrade waiter is always
    /// served first regardless of discipline: the upgrader already holds a
    /// read lock, so no conflicting waiter can make progress before it
    /// anyway, and selecting a more urgent (but ineligible) writer instead
    /// would park the pass and strand the grantable upgrade forever — a
    /// spurious head-of-line deadlock.
    fn grant_pass(&mut self, object: ObjectId, granted: &mut Vec<GrantedLock>) {
        loop {
            let Some(state) = self.locks.get_mut(&object) else {
                return;
            };
            if state.queue.is_empty() {
                if state.holders.is_empty() {
                    self.locks.remove(&object);
                }
                return;
            }
            let eligible_upgrade = state
                .queue
                .iter()
                .position(|w| w.upgrade && state.holders.iter().all(|&(t, _)| t == w.txn));
            let idx = if let Some(i) = eligible_upgrade {
                i
            } else {
                match self.policy {
                    QueuePolicy::Fifo => 0,
                    QueuePolicy::Priority => {
                        let mut best = 0;
                        for i in 1..state.queue.len() {
                            let (a, b) = (&state.queue[i], &state.queue[best]);
                            if a.priority > b.priority
                                || (a.priority == b.priority && a.seq < b.seq)
                            {
                                best = i;
                            }
                        }
                        best
                    }
                }
            };
            let w = &state.queue[idx];
            let eligible = if w.upgrade {
                state.holders.iter().all(|&(t, _)| t == w.txn)
            } else {
                !state.has_holder_conflict(w.txn, w.mode)
            };
            if !eligible {
                return;
            }
            let w = state.queue.remove(idx).expect("index in range");
            if w.upgrade {
                for h in state.holders.iter_mut() {
                    if h.0 == w.txn {
                        h.1 = LockMode::Write;
                    }
                }
                self.upgrades += 1;
            } else {
                state.holders.push((w.txn, w.mode));
                self.held_by.entry(w.txn).or_default().insert(object);
            }
            self.waiting_on.remove(&w.txn);
            self.grants += 1;
            if self.trace {
                self.journal.push(if w.upgrade {
                    LockEvent::Upgraded { txn: w.txn, object }
                } else {
                    LockEvent::Granted {
                        txn: w.txn,
                        object,
                        mode: w.mode,
                    }
                });
            }
            granted.push(GrantedLock {
                txn: w.txn,
                object,
                mode: w.mode,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(level: i64) -> Priority {
        Priority::new(level)
    }

    #[test]
    fn readers_share() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        assert_eq!(
            lt.request(TxnId(1), o, LockMode::Read, p(0)),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(2), o, LockMode::Read, p(0)),
            LockOutcome::Granted
        );
        lt.check_invariants();
        assert_eq!(lt.holders(o).len(), 2);
    }

    #[test]
    fn writer_excludes_and_wakes_fifo() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        let out = lt.request(TxnId(2), o, LockMode::Write, p(9));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(1)]
            }
        );
        let out = lt.request(TxnId(3), o, LockMode::Write, p(5));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(1), TxnId(2)]
            }
        );
        lt.check_invariants();
        // FIFO: T2 first despite T3's request later with lower priority.
        let woken = lt.release_all(TxnId(1));
        assert_eq!(
            woken,
            vec![GrantedLock {
                txn: TxnId(2),
                object: o,
                mode: LockMode::Write
            }]
        );
        let woken = lt.release_all(TxnId(2));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].txn, TxnId(3));
    }

    #[test]
    fn priority_queue_serves_most_urgent() {
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        lt.request(TxnId(2), o, LockMode::Write, p(1));
        lt.request(TxnId(3), o, LockMode::Write, p(9));
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken[0].txn, TxnId(3));
        lt.check_invariants();
    }

    #[test]
    fn fifo_read_waits_behind_queued_writer() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(0));
        lt.request(TxnId(2), o, LockMode::Write, p(0)); // queues
        let out = lt.request(TxnId(3), o, LockMode::Read, p(0));
        // T3 must wait behind the writer even though compatible w/ holder.
        match out {
            LockOutcome::Waiting { blockers } => assert_eq!(blockers, vec![TxnId(2)]),
            other => panic!("unexpected {other:?}"),
        }
        // Release the reader: writer goes first, then the reader.
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].txn, TxnId(2));
        let woken = lt.release_all(TxnId(2));
        assert_eq!(woken[0].txn, TxnId(3));
    }

    #[test]
    fn priority_read_bypasses_lower_priority_writer() {
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(5));
        lt.request(TxnId(2), o, LockMode::Write, p(1)); // queues
        let out = lt.request(TxnId(3), o, LockMode::Read, p(9));
        assert_eq!(out, LockOutcome::Granted);
        lt.check_invariants();
    }

    #[test]
    fn priority_read_does_not_bypass_higher_priority_writer() {
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(5));
        lt.request(TxnId(2), o, LockMode::Write, p(8)); // queues, urgent
        let out = lt.request(TxnId(3), o, LockMode::Read, p(2));
        match out {
            LockOutcome::Waiting { blockers } => assert_eq!(blockers, vec![TxnId(2)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn upgrade_in_place_when_sole_holder() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(0));
        assert_eq!(
            lt.request(TxnId(1), o, LockMode::Write, p(0)),
            LockOutcome::Granted
        );
        assert_eq!(lt.held_mode(TxnId(1), o), Some(LockMode::Write));
        assert_eq!(lt.upgrade_count(), 1);
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_wins() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(0));
        lt.request(TxnId(2), o, LockMode::Read, p(0));
        let out = lt.request(TxnId(1), o, LockMode::Write, p(0));
        match out {
            LockOutcome::Waiting { blockers } => assert_eq!(blockers, vec![TxnId(2)]),
            other => panic!("unexpected {other:?}"),
        }
        // A later writer queues behind the upgrade.
        lt.request(TxnId(3), o, LockMode::Write, p(0));
        let woken = lt.release_all(TxnId(2));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].txn, TxnId(1));
        assert_eq!(lt.held_mode(TxnId(1), o), Some(LockMode::Write));
        lt.check_invariants();
    }

    #[test]
    fn upgrade_not_starved_by_more_urgent_queued_writer() {
        // T1 and T2 hold reads; T1 queues an upgrade; a high-priority
        // writer T3 queues behind it. When T2 releases, the upgrade is the
        // only grantable request — selecting T3 by priority and giving up
        // would strand T1 on an object only T1 holds.
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(1));
        lt.request(TxnId(2), o, LockMode::Read, p(2));
        let out = lt.request(TxnId(1), o, LockMode::Write, p(1));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(2)]
            }
        );
        lt.request(TxnId(3), o, LockMode::Write, p(9));
        let woken = lt.release_all(TxnId(2));
        assert_eq!(
            woken,
            vec![GrantedLock {
                txn: TxnId(1),
                object: o,
                mode: LockMode::Write
            }]
        );
        assert_eq!(lt.held_mode(TxnId(1), o), Some(LockMode::Write));
        lt.check_invariants();
        // T3 follows once the upgraded writer finishes.
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken[0].txn, TxnId(3));
    }

    #[test]
    fn two_upgraders_report_mutual_blockers() {
        // Both readers request an upgrade: a genuine deadlock the table
        // cannot resolve itself. Each must report the other as a blocker so
        // the waits-for graph sees the cycle; aborting either victim lets
        // the survivor's upgrade through.
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(0));
        lt.request(TxnId(2), o, LockMode::Read, p(0));
        let out = lt.request(TxnId(1), o, LockMode::Write, p(0));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(2)]
            }
        );
        let out = lt.request(TxnId(2), o, LockMode::Write, p(0));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(1)]
            }
        );
        assert_eq!(lt.current_blockers(TxnId(1)), vec![TxnId(2)]);
        assert_eq!(lt.current_blockers(TxnId(2)), vec![TxnId(1)]);
        lt.check_invariants();
        // Deadlock resolution aborts T2; T1's upgrade becomes grantable.
        let woken = lt.release_all(TxnId(2));
        assert_eq!(
            woken,
            vec![GrantedLock {
                txn: TxnId(1),
                object: o,
                mode: LockMode::Write
            }]
        );
        assert_eq!(lt.held_mode(TxnId(1), o), Some(LockMode::Write));
        lt.check_invariants();
    }

    #[test]
    fn upgrade_blockers_exclude_queued_writers() {
        // The upgrade is served before any queued request, so its reported
        // blockers are the other holders only — no phantom edges to queued
        // writers that would fake a deadlock cycle.
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Read, p(1));
        lt.request(TxnId(2), o, LockMode::Read, p(2));
        lt.request(TxnId(3), o, LockMode::Write, p(9));
        let out = lt.request(TxnId(1), o, LockMode::Write, p(1));
        assert_eq!(
            out,
            LockOutcome::Waiting {
                blockers: vec![TxnId(2)]
            }
        );
        assert_eq!(lt.current_blockers(TxnId(1)), vec![TxnId(2)]);
        lt.check_invariants();
    }

    #[test]
    fn re_request_held_lock_is_granted() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        assert_eq!(
            lt.request(TxnId(1), o, LockMode::Read, p(0)),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(1), o, LockMode::Write, p(0)),
            LockOutcome::Granted
        );
    }

    #[test]
    fn release_of_waiting_txn_removes_it_from_queue() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        lt.request(TxnId(2), o, LockMode::Write, p(0));
        lt.request(TxnId(3), o, LockMode::Write, p(0));
        // T2 aborts while waiting.
        let woken = lt.release_all(TxnId(2));
        assert!(woken.is_empty());
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken[0].txn, TxnId(3));
        lt.check_invariants();
    }

    #[test]
    fn reader_batch_wakes_together() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        lt.request(TxnId(2), o, LockMode::Read, p(0));
        lt.request(TxnId(3), o, LockMode::Read, p(0));
        lt.request(TxnId(4), o, LockMode::Write, p(0));
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken.len(), 2);
        assert!(woken.iter().all(|g| g.mode == LockMode::Read));
        lt.check_invariants();
    }

    #[test]
    fn current_blockers_tracks_state() {
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(5));
        lt.request(TxnId(2), o, LockMode::Write, p(3));
        assert_eq!(lt.current_blockers(TxnId(2)), vec![TxnId(1)]);
        lt.request(TxnId(3), o, LockMode::Write, p(7));
        assert_eq!(lt.current_blockers(TxnId(2)), vec![TxnId(1), TxnId(3)]);
        assert!(lt.current_blockers(TxnId(1)).is_empty());
    }

    #[test]
    fn waiter_priority_update_changes_service_order() {
        let mut lt = LockTable::new(QueuePolicy::Priority);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(9));
        lt.request(TxnId(2), o, LockMode::Write, p(1));
        lt.request(TxnId(3), o, LockMode::Write, p(5));
        lt.update_waiter_priority(TxnId(2), p(8));
        let woken = lt.release_all(TxnId(1));
        assert_eq!(woken[0].txn, TxnId(2));
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn double_wait_panics() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        lt.request(TxnId(1), ObjectId(1), LockMode::Write, p(0));
        lt.request(TxnId(2), ObjectId(1), LockMode::Write, p(0));
        lt.request(TxnId(2), ObjectId(2), LockMode::Write, p(0));
    }

    #[test]
    fn journal_records_lock_lifecycle() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        lt.set_tracing(true);
        let o = ObjectId(1);
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        lt.request(TxnId(2), o, LockMode::Read, p(0));
        lt.release_all(TxnId(1));
        let mut journal = Vec::new();
        lt.drain_journal(&mut journal);
        assert_eq!(
            journal,
            vec![
                LockEvent::Requested {
                    txn: TxnId(1),
                    object: o,
                    mode: LockMode::Write
                },
                LockEvent::Granted {
                    txn: TxnId(1),
                    object: o,
                    mode: LockMode::Write
                },
                LockEvent::Requested {
                    txn: TxnId(2),
                    object: o,
                    mode: LockMode::Read
                },
                LockEvent::Blocked {
                    txn: TxnId(2),
                    object: o,
                    mode: LockMode::Read,
                    blocker: Some(TxnId(1))
                },
                LockEvent::Released {
                    txn: TxnId(1),
                    object: o
                },
                LockEvent::Granted {
                    txn: TxnId(2),
                    object: o,
                    mode: LockMode::Read
                },
            ]
        );
        let mut again = Vec::new();
        lt.drain_journal(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn journal_records_upgrades() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        lt.set_tracing(true);
        let o = ObjectId(3);
        lt.request(TxnId(1), o, LockMode::Read, p(0));
        lt.request(TxnId(1), o, LockMode::Write, p(0));
        let mut journal = Vec::new();
        lt.drain_journal(&mut journal);
        assert_eq!(
            journal[3],
            LockEvent::Upgraded {
                txn: TxnId(1),
                object: o
            }
        );
    }

    #[test]
    fn journal_stays_empty_without_tracing() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        lt.request(TxnId(1), ObjectId(1), LockMode::Write, p(0));
        lt.release_all(TxnId(1));
        let mut journal = Vec::new();
        lt.drain_journal(&mut journal);
        assert!(journal.is_empty());
    }

    #[test]
    fn held_objects_sorted() {
        let mut lt = LockTable::new(QueuePolicy::Fifo);
        lt.request(TxnId(1), ObjectId(5), LockMode::Read, p(0));
        lt.request(TxnId(1), ObjectId(2), LockMode::Write, p(0));
        assert_eq!(lt.held_objects(TxnId(1)), vec![ObjectId(2), ObjectId(5)]);
    }
}

//! An interval (range) latch manager for scan/point coexistence.
//!
//! Snapshot-free range scans need a cheaper mechanism than taking one
//! read lock per object: a scan over `[lo, hi]` takes a single *range
//! latch*, and point writers take degenerate single-object ranges. Two
//! latches conflict when their intervals overlap and at least one is a
//! write. Unlike the [lock table](crate::lock), latches are not
//! deadlock-detected: callers acquire at most one latch while blocked,
//! and the FIFO queue guarantees progress (no starvation, no cycles
//! through the latch manager alone).
//!
//! The manager keeps held latches in a flat vector — real scans hold a
//! handful of latches at a time, so linear overlap probes beat an
//! interval tree on every workload the simulator produces.
//!
//! # Example
//!
//! ```
//! use rtdb::{LatchOutcome, LockMode, ObjectId, RangeLatchManager, TxnId};
//!
//! let mut lm = RangeLatchManager::new();
//! assert_eq!(
//!     lm.acquire(TxnId(1), ObjectId(0), ObjectId(9), LockMode::Read),
//!     LatchOutcome::Granted
//! );
//! // A point write inside the scanned range blocks…
//! let out = lm.acquire(TxnId(2), ObjectId(4), ObjectId(4), LockMode::Write);
//! assert_eq!(out, LatchOutcome::Blocked { blocker: Some(TxnId(1)) });
//! // …until the scan finishes.
//! let woken = lm.release_all(TxnId(1));
//! assert_eq!(woken.len(), 1);
//! assert_eq!(woken[0].txn, TxnId(2));
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::ids::{ObjectId, TxnId};
use crate::lock::LockMode;

/// Result of a range-latch acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchOutcome {
    /// The latch is held; proceed.
    Granted,
    /// The request queued behind a conflict; `blocker` is one
    /// representative conflicting transaction (a holder if any, else the
    /// first conflicting waiter served earlier).
    Blocked {
        /// One transaction the request waits for, if identifiable.
        blocker: Option<TxnId>,
    },
}

/// A latch granted during a release pass; the caller resumes this
/// transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedLatch {
    /// The transaction whose request was granted.
    pub txn: TxnId,
    /// Inclusive lower bound of the latched range.
    pub lo: ObjectId,
    /// Inclusive upper bound of the latched range.
    pub hi: ObjectId,
    /// The granted mode.
    pub mode: LockMode,
}

#[derive(Debug, Clone, Copy)]
struct Latch {
    txn: TxnId,
    lo: u32,
    hi: u32,
    mode: LockMode,
}

impl Latch {
    fn conflicts(&self, txn: TxnId, lo: u32, hi: u32, mode: LockMode) -> bool {
        self.txn != txn && self.lo <= hi && lo <= self.hi && !self.mode.compatible(mode)
    }
}

/// The range-latch manager of one site.
///
/// See the [module documentation](self) for semantics and an example.
#[derive(Default)]
pub struct RangeLatchManager {
    held: Vec<Latch>,
    /// Strict FIFO: a request conflicting with any *earlier* waiter queues
    /// behind it even when compatible with every holder, so writers are
    /// never starved by a stream of overlapping readers.
    waiters: VecDeque<Latch>,
    grants: u64,
    blocks: u64,
}

impl fmt::Debug for RangeLatchManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangeLatchManager")
            .field("held", &self.held.len())
            .field("waiting", &self.waiters.len())
            .field("grants", &self.grants)
            .field("blocks", &self.blocks)
            .finish()
    }
}

impl RangeLatchManager {
    /// Creates an empty latch manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `mode` on the inclusive range `[lo, hi]` for `txn`.
    ///
    /// A transaction may hold several latches (a scan latch plus point
    /// write latches, say); its own latches never conflict with each
    /// other.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, or if `txn` is already queued — a blocked
    /// transaction cannot issue further requests.
    pub fn acquire(&mut self, txn: TxnId, lo: ObjectId, hi: ObjectId, mode: LockMode) -> LatchOutcome {
        assert!(lo.0 <= hi.0, "range latch bounds inverted: {lo}..{hi}");
        assert!(
            !self.waiters.iter().any(|w| w.txn == txn),
            "{txn} acquired a range latch while already waiting"
        );
        let (lo, hi) = (lo.0, hi.0);
        let holder = self
            .held
            .iter()
            .find(|l| l.conflicts(txn, lo, hi, mode))
            .map(|l| l.txn);
        let ahead = self
            .waiters
            .iter()
            .find(|w| w.conflicts(txn, lo, hi, mode))
            .map(|w| w.txn);
        if holder.is_none() && ahead.is_none() {
            self.held.push(Latch { txn, lo, hi, mode });
            self.grants += 1;
            return LatchOutcome::Granted;
        }
        self.waiters.push_back(Latch { txn, lo, hi, mode });
        self.blocks += 1;
        LatchOutcome::Blocked {
            blocker: holder.or(ahead),
        }
    }

    /// Releases every latch held or awaited by `txn` and wakes eligible
    /// waiters in FIFO order. A waiter is granted when it conflicts with
    /// no remaining holder and no waiter still queued ahead of it, so a
    /// compatible batch (several readers) wakes together while order
    /// across conflicts is preserved. Returns the requests granted by
    /// this release.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<GrantedLatch> {
        self.held.retain(|l| l.txn != txn);
        self.waiters.retain(|w| w.txn != txn);

        let mut granted = Vec::new();
        let mut still_waiting: VecDeque<Latch> = VecDeque::new();
        while let Some(w) = self.waiters.pop_front() {
            let blocked = self
                .held
                .iter()
                .chain(still_waiting.iter())
                .any(|l| l.conflicts(w.txn, w.lo, w.hi, w.mode));
            if blocked {
                still_waiting.push_back(w);
            } else {
                self.held.push(w);
                self.grants += 1;
                granted.push(GrantedLatch {
                    txn: w.txn,
                    lo: ObjectId(w.lo),
                    hi: ObjectId(w.hi),
                    mode: w.mode,
                });
            }
        }
        self.waiters = still_waiting;
        granted
    }

    /// Whether `txn` currently holds at least one latch.
    pub fn holds(&self, txn: TxnId) -> bool {
        self.held.iter().any(|l| l.txn == txn)
    }

    /// Whether `txn` is queued behind a conflict.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiters.iter().any(|w| w.txn == txn)
    }

    /// Number of latches currently held (across all transactions).
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Number of queued requests.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }

    /// Latch acquisitions granted so far (immediate or by a release pass).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Acquisitions that had to queue.
    pub fn block_count(&self) -> u64 {
        self.blocks
    }

    /// Internal invariant check for tests: no two held latches conflict,
    /// and no transaction both holds and awaits a latch on an overlapping
    /// range (its own request would self-conflict otherwise).
    pub fn check_invariants(&self) {
        for (i, a) in self.held.iter().enumerate() {
            for b in &self.held[i + 1..] {
                assert!(
                    !a.conflicts(b.txn, b.lo, b.hi, b.mode),
                    "incompatible held latches {}:{}..{} and {}:{}..{}",
                    a.txn,
                    a.lo,
                    a.hi,
                    b.txn,
                    b.lo,
                    b.hi
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire(lm: &mut RangeLatchManager, txn: u64, lo: u32, hi: u32, mode: LockMode) -> LatchOutcome {
        lm.acquire(TxnId(txn), ObjectId(lo), ObjectId(hi), mode)
    }

    #[test]
    fn disjoint_writes_share() {
        let mut lm = RangeLatchManager::new();
        assert_eq!(acquire(&mut lm, 1, 0, 4, LockMode::Write), LatchOutcome::Granted);
        assert_eq!(acquire(&mut lm, 2, 5, 9, LockMode::Write), LatchOutcome::Granted);
        lm.check_invariants();
        assert_eq!(lm.held_count(), 2);
    }

    #[test]
    fn overlapping_readers_share() {
        let mut lm = RangeLatchManager::new();
        assert_eq!(acquire(&mut lm, 1, 0, 9, LockMode::Read), LatchOutcome::Granted);
        assert_eq!(acquire(&mut lm, 2, 5, 15, LockMode::Read), LatchOutcome::Granted);
        lm.check_invariants();
    }

    #[test]
    fn point_write_blocks_under_scan() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 9, LockMode::Read);
        let out = acquire(&mut lm, 2, 4, 4, LockMode::Write);
        assert_eq!(
            out,
            LatchOutcome::Blocked {
                blocker: Some(TxnId(1))
            }
        );
        let woken = lm.release_all(TxnId(1));
        assert_eq!(
            woken,
            vec![GrantedLatch {
                txn: TxnId(2),
                lo: ObjectId(4),
                hi: ObjectId(4),
                mode: LockMode::Write
            }]
        );
        lm.check_invariants();
    }

    #[test]
    fn fifo_reader_waits_behind_queued_writer() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 9, LockMode::Read);
        acquire(&mut lm, 2, 0, 9, LockMode::Write); // queues
        let out = acquire(&mut lm, 3, 0, 9, LockMode::Read);
        // T3 is compatible with the holder but must not starve T2.
        assert_eq!(
            out,
            LatchOutcome::Blocked {
                blocker: Some(TxnId(2))
            }
        );
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].txn, TxnId(2));
        let woken = lm.release_all(TxnId(2));
        assert_eq!(woken[0].txn, TxnId(3));
    }

    #[test]
    fn reader_batch_wakes_together() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 9, LockMode::Write);
        acquire(&mut lm, 2, 2, 5, LockMode::Read);
        acquire(&mut lm, 3, 4, 8, LockMode::Read);
        acquire(&mut lm, 4, 3, 3, LockMode::Write);
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken.len(), 2);
        assert!(woken.iter().all(|g| g.mode == LockMode::Read));
        lm.check_invariants();
    }

    #[test]
    fn own_latches_never_conflict() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 9, LockMode::Read);
        assert_eq!(acquire(&mut lm, 1, 4, 4, LockMode::Write), LatchOutcome::Granted);
        assert!(lm.holds(TxnId(1)));
        assert_eq!(lm.held_count(), 2);
    }

    #[test]
    fn release_of_waiting_txn_dequeues_it() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 9, LockMode::Write);
        acquire(&mut lm, 2, 0, 9, LockMode::Write);
        acquire(&mut lm, 3, 0, 9, LockMode::Write);
        // T2 aborts while queued.
        let woken = lm.release_all(TxnId(2));
        assert!(woken.is_empty());
        assert!(!lm.is_waiting(TxnId(2)));
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken[0].txn, TxnId(3));
        lm.check_invariants();
    }

    #[test]
    fn adjacent_ranges_do_not_overlap() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 4, LockMode::Write);
        assert_eq!(acquire(&mut lm, 2, 5, 5, LockMode::Write), LatchOutcome::Granted);
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn acquire_while_waiting_panics() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 0, 0, LockMode::Write);
        acquire(&mut lm, 2, 0, 0, LockMode::Write);
        acquire(&mut lm, 2, 1, 1, LockMode::Write);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_range_panics() {
        let mut lm = RangeLatchManager::new();
        acquire(&mut lm, 1, 5, 2, LockMode::Read);
    }
}

//! Reusable per-transaction scratch buffers for hot simulation paths.
//!
//! The simulators process hundreds of thousands of transaction arrivals;
//! building each arrival's granule-space declaration with fresh
//! collections costs dozens of heap allocations per transaction. The
//! types here hold the buffers across arrivals so the steady state
//! allocates nothing, while producing byte-identical results to the
//! original set-based construction (sorted, deduplicated granule sets).

use crate::ids::ObjectId;
use crate::lock::LockMode;
use crate::txn::TxnSpec;

/// Reusable buffers for mapping a transaction's object accesses onto lock
/// granules (a granule covers `granularity` consecutive object ids and is
/// write-mode if the transaction writes any object inside it).
#[derive(Debug, Default)]
pub struct GranuleScratch {
    write_granules: Vec<ObjectId>,
    read_granules: Vec<ObjectId>,
}

impl GranuleScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `spec` onto granule space: rewrites `granule_spec` in place as
    /// the granule-level declaration (sorted, deduplicated read and write
    /// granule sets — what a ceiling protocol registers) and refills
    /// `lock_seq` with the per-step lock requests matching
    /// [`TxnSpec::access_ops`] order.
    ///
    /// Equivalent to collecting the granule sets into `BTreeSet`s and the
    /// sequence into a fresh vector, without the per-element allocations.
    pub fn map(
        &mut self,
        spec: &TxnSpec,
        granularity: u32,
        granule_spec: &mut TxnSpec,
        lock_seq: &mut Vec<(ObjectId, LockMode)>,
    ) {
        let granule = |o: ObjectId| ObjectId(o.0 / granularity);

        self.write_granules.clear();
        self.write_granules
            .extend(spec.write_set.iter().map(|&o| granule(o)));
        self.write_granules.sort_unstable();
        self.write_granules.dedup();

        self.read_granules.clear();
        self.read_granules
            .extend(spec.read_set.iter().map(|&o| granule(o)));
        self.read_granules.sort_unstable();
        self.read_granules.dedup();
        let writes = &self.write_granules;
        self.read_granules
            .retain(|gr| writes.binary_search(gr).is_err());

        lock_seq.clear();
        lock_seq.extend(spec.access_ops().map(|(o, _)| {
            let gr = granule(o);
            let mode = if writes.binary_search(&gr).is_ok() {
                LockMode::Write
            } else {
                LockMode::Read
            };
            (gr, mode)
        }));

        granule_spec.id = spec.id;
        granule_spec.arrival = spec.arrival;
        granule_spec.deadline = spec.deadline;
        granule_spec.home_site = spec.home_site;
        granule_spec.read_set.clear();
        granule_spec.read_set.extend_from_slice(&self.read_granules);
        granule_spec.write_set.clear();
        granule_spec
            .write_set
            .extend_from_slice(&self.write_granules);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SiteId, TxnId};
    use starlite::SimTime;
    use std::collections::BTreeSet;

    fn spec(reads: Vec<u32>, writes: Vec<u32>) -> TxnSpec {
        TxnSpec::new(
            TxnId(1),
            SimTime::from_ticks(10),
            reads.into_iter().map(ObjectId).collect(),
            writes.into_iter().map(ObjectId).collect(),
            SimTime::from_ticks(100),
            SiteId(0),
        )
    }

    /// The original set-based construction the scratch must reproduce.
    fn reference(spec: &TxnSpec, g: u32) -> (TxnSpec, Vec<(ObjectId, LockMode)>) {
        let granule = |o: ObjectId| ObjectId(o.0 / g);
        let write_granules: BTreeSet<ObjectId> =
            spec.write_set.iter().map(|&o| granule(o)).collect();
        let read_granules: BTreeSet<ObjectId> = spec
            .read_set
            .iter()
            .map(|&o| granule(o))
            .filter(|gr| !write_granules.contains(gr))
            .collect();
        let lock_seq = spec
            .access_sequence()
            .into_iter()
            .map(|(o, _)| {
                let gr = granule(o);
                let mode = if write_granules.contains(&gr) {
                    LockMode::Write
                } else {
                    LockMode::Read
                };
                (gr, mode)
            })
            .collect();
        let gspec = TxnSpec::new(
            spec.id,
            spec.arrival,
            read_granules.into_iter().collect(),
            write_granules.into_iter().collect(),
            spec.deadline,
            spec.home_site,
        );
        (gspec, lock_seq)
    }

    #[test]
    fn matches_set_based_reference() {
        let cases = [
            (spec(vec![1, 2, 9], vec![3]), 1),
            (spec(vec![1, 2, 9], vec![3]), 4),
            (spec(vec![8, 1, 5, 13], vec![12, 2]), 4),
            (spec(vec![], vec![7, 3, 7 + 32]), 8),
            (spec(vec![40, 41, 42], vec![]), 4),
        ];
        let mut scratch = GranuleScratch::new();
        let mut gspec = spec(vec![0], vec![]);
        let mut lock_seq = Vec::new();
        for (s, g) in cases {
            let (want_spec, want_seq) = reference(&s, g);
            scratch.map(&s, g, &mut gspec, &mut lock_seq);
            assert_eq!(gspec, want_spec, "granularity {g}");
            assert_eq!(lock_seq, want_seq, "granularity {g}");
        }
    }

    #[test]
    fn reuse_across_transactions_leaves_no_residue() {
        let mut scratch = GranuleScratch::new();
        let mut gspec = spec(vec![0], vec![]);
        let mut lock_seq = Vec::new();
        scratch.map(
            &spec(vec![1, 2, 3, 4], vec![5, 6]),
            2,
            &mut gspec,
            &mut lock_seq,
        );
        let small = spec(vec![9], vec![]);
        scratch.map(&small, 2, &mut gspec, &mut lock_seq);
        let (want_spec, want_seq) = reference(&small, 2);
        assert_eq!(gspec, want_spec);
        assert_eq!(lock_seq, want_seq);
    }
}

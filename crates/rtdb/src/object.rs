//! Data objects and per-site object stores.
//!
//! Objects carry real `u64` values and monotonically increasing version
//! numbers. The locking protocols are therefore testable for *correctness*
//! as well as timing: a read observes the value most recently committed
//! under the serialisation order the protocol enforces, and replication
//! staleness is measurable as a version lag.

use std::fmt;

use serde::{Deserialize, Serialize};
use starlite::SimTime;

use crate::ids::{ObjectId, TxnId};

/// One data object: a value plus its version history metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataObject {
    /// Current value.
    pub value: u64,
    /// Number of committed writes applied so far.
    pub version: u64,
    /// Transaction that committed the current version, if any.
    pub last_writer: Option<TxnId>,
    /// Virtual time of the last committed write.
    pub written_at: SimTime,
}

impl DataObject {
    /// A fresh object with value 0 at version 0.
    pub fn new() -> Self {
        DataObject {
            value: 0,
            version: 0,
            last_writer: None,
            written_at: SimTime::ZERO,
        }
    }
}

impl Default for DataObject {
    fn default() -> Self {
        DataObject::new()
    }
}

/// The value store of one site (a copy of the whole database, per the
/// paper's full-replication restriction, or the single copy of a
/// single-site system).
///
/// # Example
///
/// ```
/// use rtdb::{ObjectStore, ObjectId, TxnId};
/// use starlite::SimTime;
///
/// let mut store = ObjectStore::new(8);
/// store.apply_write(ObjectId(3), 42, TxnId(1), SimTime::from_ticks(5));
/// assert_eq!(store.read(ObjectId(3)).value, 42);
/// assert_eq!(store.read(ObjectId(3)).version, 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectStore {
    objects: Vec<DataObject>,
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("len", &self.objects.len())
            .finish()
    }
}

impl ObjectStore {
    /// Creates a store of `size` fresh objects.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "a database needs at least one object");
        ObjectStore {
            objects: vec![DataObject::new(); size as usize],
        }
    }

    /// Number of objects in the store.
    pub fn len(&self) -> u32 {
        self.objects.len() as u32
    }

    /// `false`; stores are never empty (see [`ObjectStore::new`]).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Reads an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn read(&self, id: ObjectId) -> &DataObject {
        &self.objects[id.0 as usize]
    }

    /// Applies a committed write, bumping the version.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn apply_write(&mut self, id: ObjectId, value: u64, writer: TxnId, at: SimTime) {
        let obj = &mut self.objects[id.0 as usize];
        obj.value = value;
        obj.version += 1;
        obj.last_writer = Some(writer);
        obj.written_at = at;
    }

    /// Overwrites an object with a specific version (used when installing a
    /// propagated secondary copy, which must not invent new versions).
    ///
    /// Returns `true` if the update was applied, `false` if the store
    /// already holds that version or a newer one (stale propagation).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn install_version(
        &mut self,
        id: ObjectId,
        value: u64,
        version: u64,
        writer: TxnId,
        at: SimTime,
    ) -> bool {
        let obj = &mut self.objects[id.0 as usize];
        if version <= obj.version {
            return false;
        }
        obj.value = value;
        obj.version = version;
        obj.last_writer = Some(writer);
        obj.written_at = at;
        true
    }

    /// Iterates over `(ObjectId, &DataObject)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &DataObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_bump_versions() {
        let mut s = ObjectStore::new(4);
        s.apply_write(ObjectId(0), 10, TxnId(1), SimTime::from_ticks(1));
        s.apply_write(ObjectId(0), 20, TxnId(2), SimTime::from_ticks(2));
        let o = s.read(ObjectId(0));
        assert_eq!(o.value, 20);
        assert_eq!(o.version, 2);
        assert_eq!(o.last_writer, Some(TxnId(2)));
    }

    #[test]
    fn install_version_rejects_stale() {
        let mut s = ObjectStore::new(2);
        assert!(s.install_version(ObjectId(1), 5, 3, TxnId(1), SimTime::ZERO));
        assert!(!s.install_version(ObjectId(1), 9, 3, TxnId(2), SimTime::ZERO));
        assert!(!s.install_version(ObjectId(1), 9, 2, TxnId(2), SimTime::ZERO));
        assert_eq!(s.read(ObjectId(1)).value, 5);
        assert!(s.install_version(ObjectId(1), 9, 4, TxnId(2), SimTime::ZERO));
        assert_eq!(s.read(ObjectId(1)).version, 4);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_store_panics() {
        ObjectStore::new(0);
    }

    #[test]
    fn iter_covers_all_objects() {
        let s = ObjectStore::new(3);
        assert_eq!(s.iter().count(), 3);
        assert_eq!(s.len(), 3);
    }
}

//! Two-phase commit state machines.
//!
//! The paper's transaction manager "executes the two-phase commit protocol
//! to ensure that a transaction commits or aborts globally". These state
//! machines are transport-agnostic: each transition returns the messages to
//! send, and the distributed engines in `rtlock` move them through the
//! simulated network. A coordinator that times out while collecting votes
//! decides abort, which keeps the protocol safe when a site is down (the
//! message server's timeout mechanism unblocks the sender).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{SiteId, TxnId};

/// A participant's vote in phase one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// Ready to commit; the participant is prepared.
    Yes,
    /// Cannot commit; the coordinator must abort.
    No,
}

/// What a [`Coordinator`] asks its caller to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorAction {
    /// Send `prepare` to each listed participant.
    SendPrepare(Vec<SiteId>),
    /// Send the global commit decision to each listed participant.
    SendCommit(Vec<SiteId>),
    /// Send the global abort decision to each listed participant.
    SendAbort(Vec<SiteId>),
    /// The protocol finished; `committed` is the global outcome.
    Done {
        /// `true` if the transaction committed globally.
        committed: bool,
    },
}

/// What a [`Participant`] asks its caller to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantAction {
    /// Reply to the coordinator with this vote.
    Reply(Vote),
    /// Apply the commit locally, then acknowledge.
    CommitAndAck,
    /// Undo local effects, then acknowledge.
    AbortAndAck,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum CoordState {
    Created,
    Voting {
        pending: BTreeSet<SiteId>,
        any_no: bool,
    },
    Deciding {
        commit: bool,
        pending: BTreeSet<SiteId>,
    },
    Done {
        committed: bool,
    },
}

/// The coordinator side of two-phase commit for one transaction.
///
/// # Example
///
/// ```
/// use rtdb::{Coordinator, CoordinatorAction, Vote, TxnId, SiteId};
///
/// let mut c = Coordinator::new(TxnId(1), vec![SiteId(1), SiteId(2)]);
/// assert_eq!(c.start(), CoordinatorAction::SendPrepare(vec![SiteId(1), SiteId(2)]));
/// assert_eq!(c.on_vote(SiteId(1), Vote::Yes), None);
/// assert_eq!(
///     c.on_vote(SiteId(2), Vote::Yes),
///     Some(CoordinatorAction::SendCommit(vec![SiteId(1), SiteId(2)]))
/// );
/// assert_eq!(c.on_ack(SiteId(1)), None);
/// assert_eq!(c.on_ack(SiteId(2)), Some(CoordinatorAction::Done { committed: true }));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Coordinator {
    txn: TxnId,
    participants: Vec<SiteId>,
    state: CoordState,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("txn", &self.txn)
            .field("state", &self.state)
            .finish()
    }
}

impl Coordinator {
    /// Creates a coordinator for `txn` over the given participant sites.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty or contains duplicates.
    pub fn new(txn: TxnId, participants: Vec<SiteId>) -> Self {
        assert!(
            !participants.is_empty(),
            "2PC needs at least one participant"
        );
        let set: BTreeSet<SiteId> = participants.iter().copied().collect();
        assert_eq!(set.len(), participants.len(), "duplicate participants");
        Coordinator {
            txn,
            participants,
            state: CoordState::Created,
        }
    }

    /// The transaction being committed.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Begins phase one.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) -> CoordinatorAction {
        assert_eq!(
            self.state,
            CoordState::Created,
            "coordinator already started"
        );
        self.state = CoordState::Voting {
            pending: self.participants.iter().copied().collect(),
            any_no: false,
        };
        CoordinatorAction::SendPrepare(self.participants.clone())
    }

    /// Records a vote; returns the phase-two broadcast when the tally
    /// completes.
    pub fn on_vote(&mut self, from: SiteId, vote: Vote) -> Option<CoordinatorAction> {
        let CoordState::Voting { pending, any_no } = &mut self.state else {
            return None; // stale vote after a timeout decision
        };
        if !pending.remove(&from) {
            return None; // duplicate vote
        }
        if vote == Vote::No {
            *any_no = true;
        }
        if !pending.is_empty() {
            return None;
        }
        let commit = !*any_no;
        self.state = CoordState::Deciding {
            commit,
            pending: self.participants.iter().copied().collect(),
        };
        Some(if commit {
            CoordinatorAction::SendCommit(self.participants.clone())
        } else {
            CoordinatorAction::SendAbort(self.participants.clone())
        })
    }

    /// Vote collection timed out (e.g. a site is down); decide abort.
    /// Returns `None` if a decision was already reached.
    pub fn on_vote_timeout(&mut self) -> Option<CoordinatorAction> {
        if !matches!(self.state, CoordState::Voting { .. }) {
            return None;
        }
        self.state = CoordState::Deciding {
            commit: false,
            pending: self.participants.iter().copied().collect(),
        };
        Some(CoordinatorAction::SendAbort(self.participants.clone()))
    }

    /// Records an acknowledgement; returns `Done` when all are in.
    pub fn on_ack(&mut self, from: SiteId) -> Option<CoordinatorAction> {
        let CoordState::Deciding { commit, pending } = &mut self.state else {
            return None;
        };
        if !pending.remove(&from) {
            return None;
        }
        if pending.is_empty() {
            let committed = *commit;
            self.state = CoordState::Done { committed };
            return Some(CoordinatorAction::Done { committed });
        }
        None
    }

    /// The final outcome, once reached.
    pub fn outcome(&self) -> Option<bool> {
        match self.state {
            CoordState::Done { committed } => Some(committed),
            _ => None,
        }
    }

    /// `true` while votes are still being collected.
    pub fn is_voting(&self) -> bool {
        matches!(self.state, CoordState::Voting { .. })
    }

    /// `true` if `site` still owes an acknowledgement of the decision.
    /// `false` in every other state, so a duplicate (retransmitted or
    /// network-duplicated) ack can be recognised and ignored.
    pub fn is_pending_ack(&self, site: SiteId) -> bool {
        match &self.state {
            CoordState::Deciding { pending, .. } => pending.contains(&site),
            _ => false,
        }
    }

    /// Sites that have not yet acknowledged the decision (empty outside
    /// the `Deciding` state). Used to retransmit lost decisions.
    pub fn pending_acks(&self) -> Vec<SiteId> {
        match &self.state {
            CoordState::Deciding { pending, .. } => pending.iter().copied().collect(),
            _ => Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartState {
    Working,
    Prepared,
    Finished { committed: bool },
}

/// The participant side of two-phase commit for one transaction at one
/// site.
#[derive(Clone, PartialEq, Eq)]
pub struct Participant {
    txn: TxnId,
    state: PartState,
}

impl fmt::Debug for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Participant")
            .field("txn", &self.txn)
            .field("state", &self.state)
            .finish()
    }
}

impl Participant {
    /// Creates a participant still doing work for `txn`.
    pub fn new(txn: TxnId) -> Self {
        Participant {
            txn,
            state: PartState::Working,
        }
    }

    /// The transaction this participant serves.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Handles the coordinator's prepare request; `can_commit` is the local
    /// verdict (locks held, constraints satisfied).
    ///
    /// # Panics
    ///
    /// Panics if the participant already voted or finished.
    pub fn on_prepare(&mut self, can_commit: bool) -> ParticipantAction {
        assert_eq!(self.state, PartState::Working, "prepare received twice");
        if can_commit {
            self.state = PartState::Prepared;
            ParticipantAction::Reply(Vote::Yes)
        } else {
            self.state = PartState::Finished { committed: false };
            ParticipantAction::Reply(Vote::No)
        }
    }

    /// Handles the global decision. A participant that voted `No` has
    /// already aborted and simply acknowledges an abort decision.
    ///
    /// # Panics
    ///
    /// Panics on a commit decision that contradicts a `No` vote (a
    /// coordinator bug) or on a decision before any vote.
    pub fn on_decision(&mut self, commit: bool) -> ParticipantAction {
        match self.state {
            PartState::Prepared => {
                self.state = PartState::Finished { committed: commit };
                if commit {
                    ParticipantAction::CommitAndAck
                } else {
                    ParticipantAction::AbortAndAck
                }
            }
            PartState::Finished { committed: false } if !commit => ParticipantAction::AbortAndAck,
            other => panic!("decision (commit={commit}) in state {other:?}"),
        }
    }

    /// The local outcome, once decided.
    pub fn outcome(&self) -> Option<bool> {
        match self.state {
            PartState::Finished { committed } => Some(committed),
            _ => None,
        }
    }

    /// `true` while the participant holds a Yes vote awaiting the decision.
    pub fn is_prepared(&self) -> bool {
        self.state == PartState::Prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_yes_commits() {
        let mut c = Coordinator::new(TxnId(1), vec![SiteId(0), SiteId(1)]);
        c.start();
        assert!(c.on_vote(SiteId(0), Vote::Yes).is_none());
        match c.on_vote(SiteId(1), Vote::Yes) {
            Some(CoordinatorAction::SendCommit(to)) => assert_eq!(to.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        c.on_ack(SiteId(0));
        assert_eq!(
            c.on_ack(SiteId(1)),
            Some(CoordinatorAction::Done { committed: true })
        );
        assert_eq!(c.outcome(), Some(true));
    }

    #[test]
    fn any_no_aborts() {
        let mut c = Coordinator::new(TxnId(1), vec![SiteId(0), SiteId(1)]);
        c.start();
        c.on_vote(SiteId(0), Vote::No);
        match c.on_vote(SiteId(1), Vote::Yes) {
            Some(CoordinatorAction::SendAbort(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        c.on_ack(SiteId(0));
        assert_eq!(
            c.on_ack(SiteId(1)),
            Some(CoordinatorAction::Done { committed: false })
        );
    }

    #[test]
    fn vote_timeout_aborts() {
        let mut c = Coordinator::new(TxnId(1), vec![SiteId(0), SiteId(1)]);
        c.start();
        c.on_vote(SiteId(0), Vote::Yes);
        match c.on_vote_timeout() {
            Some(CoordinatorAction::SendAbort(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        // A straggler vote after the timeout decision is ignored.
        assert!(c.on_vote(SiteId(1), Vote::Yes).is_none());
        assert!(c.on_vote_timeout().is_none());
    }

    #[test]
    fn duplicate_votes_and_acks_ignored() {
        let mut c = Coordinator::new(TxnId(1), vec![SiteId(0)]);
        c.start();
        assert!(c
            .on_vote(SiteId(0), Vote::Yes)
            .is_some_and(|a| matches!(a, CoordinatorAction::SendCommit(_))));
        assert!(c.on_vote(SiteId(0), Vote::Yes).is_none());
        assert!(c.on_ack(SiteId(0)).is_some());
        assert!(c.on_ack(SiteId(0)).is_none());
    }

    #[test]
    fn participant_happy_path() {
        let mut p = Participant::new(TxnId(1));
        assert_eq!(p.on_prepare(true), ParticipantAction::Reply(Vote::Yes));
        assert!(p.is_prepared());
        assert_eq!(p.on_decision(true), ParticipantAction::CommitAndAck);
        assert_eq!(p.outcome(), Some(true));
    }

    #[test]
    fn participant_no_vote_self_aborts() {
        let mut p = Participant::new(TxnId(1));
        assert_eq!(p.on_prepare(false), ParticipantAction::Reply(Vote::No));
        assert_eq!(p.outcome(), Some(false));
        // The abort decision still gets an ack.
        assert_eq!(p.on_decision(false), ParticipantAction::AbortAndAck);
    }

    #[test]
    #[should_panic(expected = "decision")]
    fn commit_after_no_vote_panics() {
        let mut p = Participant::new(TxnId(1));
        p.on_prepare(false);
        p.on_decision(true);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn empty_participants_panics() {
        Coordinator::new(TxnId(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate participants")]
    fn duplicate_participants_panics() {
        Coordinator::new(TxnId(1), vec![SiteId(0), SiteId(0)]);
    }
}

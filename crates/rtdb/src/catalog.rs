//! Database configuration: size, placement and replication.
//!
//! Mirrors the paper's "database configuration" menu: the database at each
//! site with user-defined size and level of replication. Two placements are
//! supported:
//!
//! * [`Placement::SingleSite`] — one copy of everything at one site (the
//!   §3 experiments);
//! * [`Placement::FullyReplicated`] — every object replicated at every
//!   site with a designated *primary* copy (the §4 local-ceiling model's
//!   restriction 1: "every data object is fully replicated at each site").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ObjectId, SiteId};

/// How the database is laid out across sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// All objects live at a single site; no replication.
    SingleSite,
    /// Every object is fully replicated at every site; each object has one
    /// primary copy (round-robin by object id unless remapped).
    FullyReplicated,
}

/// The database catalog: object universe, site count and primary mapping.
///
/// # Example
///
/// ```
/// use rtdb::{Catalog, Placement, ObjectId, SiteId};
///
/// let cat = Catalog::new(90, 3, Placement::FullyReplicated);
/// assert_eq!(cat.primary_site(ObjectId(4)), SiteId(1));
/// assert!(cat.is_replicated_at(ObjectId(4), SiteId(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    db_size: u32,
    sites: u8,
    placement: Placement,
    /// `primary[obj] = site`; defaults to `obj % sites`.
    primary: Vec<SiteId>,
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("db_size", &self.db_size)
            .field("sites", &self.sites)
            .field("placement", &self.placement)
            .finish()
    }
}

impl Catalog {
    /// Creates a catalog of `db_size` objects over `sites` sites.
    ///
    /// With [`Placement::FullyReplicated`], primaries are assigned
    /// round-robin (`object id mod sites`), which spreads update load
    /// evenly, as in the paper's tracking scenario where each station owns
    /// its own tracks.
    ///
    /// # Panics
    ///
    /// Panics if `db_size` is zero, `sites` is zero, or `placement` is
    /// [`Placement::SingleSite`] with more than one site.
    pub fn new(db_size: u32, sites: u8, placement: Placement) -> Self {
        assert!(db_size > 0, "a database needs at least one object");
        assert!(sites > 0, "a system needs at least one site");
        if placement == Placement::SingleSite {
            assert_eq!(sites, 1, "single-site placement requires exactly one site");
        }
        let primary = (0..db_size)
            .map(|o| SiteId((o % sites as u32) as u8))
            .collect();
        Catalog {
            db_size,
            sites,
            placement,
            primary,
        }
    }

    /// Number of objects in the logical database.
    pub fn db_size(&self) -> u32 {
        self.db_size
    }

    /// Number of sites.
    pub fn site_count(&self) -> u8 {
        self.sites
    }

    /// Iterates over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites).map(SiteId)
    }

    /// The placement scheme.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The site holding the primary copy of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn primary_site(&self, obj: ObjectId) -> SiteId {
        self.primary[obj.0 as usize]
    }

    /// Reassigns the primary copy of `obj` to `site` (the paper's
    /// restriction 2 requires updated objects to be primary at the updating
    /// transaction's site; workload placement may use this to co-locate).
    ///
    /// # Panics
    ///
    /// Panics if `obj` or `site` is out of range.
    pub fn set_primary(&mut self, obj: ObjectId, site: SiteId) {
        assert!(site.0 < self.sites, "site out of range");
        self.primary[obj.0 as usize] = site;
    }

    /// Whether `site` holds a (primary or secondary) copy of `obj`.
    pub fn is_replicated_at(&self, obj: ObjectId, site: SiteId) -> bool {
        match self.placement {
            Placement::SingleSite => site.0 == 0,
            Placement::FullyReplicated => site.0 < self.sites && obj.0 < self.db_size,
        }
    }

    /// All objects whose primary copy lives at `site`.
    pub fn primaries_at(&self, site: SiteId) -> impl Iterator<Item = ObjectId> + '_ {
        self.primary
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == site)
            .map(|(i, _)| ObjectId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_primaries() {
        let cat = Catalog::new(10, 3, Placement::FullyReplicated);
        assert_eq!(cat.primary_site(ObjectId(0)), SiteId(0));
        assert_eq!(cat.primary_site(ObjectId(1)), SiteId(1));
        assert_eq!(cat.primary_site(ObjectId(2)), SiteId(2));
        assert_eq!(cat.primary_site(ObjectId(3)), SiteId(0));
        assert_eq!(cat.primaries_at(SiteId(0)).count(), 4);
        assert_eq!(cat.primaries_at(SiteId(1)).count(), 3);
    }

    #[test]
    fn set_primary_remaps() {
        let mut cat = Catalog::new(6, 2, Placement::FullyReplicated);
        cat.set_primary(ObjectId(0), SiteId(1));
        assert_eq!(cat.primary_site(ObjectId(0)), SiteId(1));
    }

    #[test]
    #[should_panic(expected = "single-site placement")]
    fn single_site_with_many_sites_panics() {
        Catalog::new(10, 3, Placement::SingleSite);
    }

    #[test]
    fn replication_predicate() {
        let cat = Catalog::new(4, 2, Placement::FullyReplicated);
        assert!(cat.is_replicated_at(ObjectId(3), SiteId(0)));
        assert!(cat.is_replicated_at(ObjectId(3), SiteId(1)));
        assert!(!cat.is_replicated_at(ObjectId(3), SiteId(2)));

        let single = Catalog::new(4, 1, Placement::SingleSite);
        assert!(single.is_replicated_at(ObjectId(0), SiteId(0)));
        assert!(!single.is_replicated_at(ObjectId(0), SiteId(1)));
    }
}

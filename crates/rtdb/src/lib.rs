//! # rtdb — real-time database substrate
//!
//! The database layer under the locking protocols: everything the paper's
//! prototyping environment calls the *Resource Manager* plus the shared
//! transaction model used by every other crate.
//!
//! * [`ids`] — newtype identifiers for transactions, data objects, and sites.
//! * [`object`] — data objects carrying real values and versions, and the
//!   per-site [`object::ObjectStore`].
//! * [`catalog`] — database configuration: size, replication map, primary
//!   copies (the paper's "database configuration" menu).
//! * [`lock`] — a read/write lock table with FIFO or priority wait queues.
//! * [`latch`] — interval (range) latches so scans coexist with point
//!   writes without per-object locks.
//! * [`wfg`] — the waits-for graph and deadlock (cycle) detection.
//! * [`txn`] — transaction specifications, runtime state and statistics.
//! * [`history`] — committed-operation logs for serialisability checking.
//! * [`commit`] — two-phase commit coordinator / participant state machines.
//!
//! Data objects carry actual `u64` values so correctness (not just timing)
//! of the protocols is testable: committed histories must be conflict
//! serialisable, and replicated reads must observe committed versions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod commit;
pub mod history;
pub mod ids;
pub mod latch;
pub mod lock;
pub mod object;
pub mod scratch;
pub mod small;
pub mod txn;
pub mod wfg;

pub use catalog::{Catalog, Placement};
pub use commit::{Coordinator, CoordinatorAction, Participant, ParticipantAction, Vote};
pub use history::{History, OpKind, Operation};
pub use ids::{ObjectId, SiteId, TxnId};
pub use latch::{GrantedLatch, LatchOutcome, RangeLatchManager};
pub use lock::{GrantedLock, LockEvent, LockMode, LockOutcome, LockTable, QueuePolicy};
pub use object::{DataObject, ObjectStore};
pub use scratch::GranuleScratch;
pub use small::InlineVec;
pub use txn::{TxnKind, TxnSpec, TxnState};
pub use wfg::WaitsForGraph;

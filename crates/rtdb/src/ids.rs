//! Newtype identifiers shared across the prototyping environment.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a transaction (globally unique across sites and restarts of
/// the same logical transaction: a restarted transaction keeps its id).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a data object in the (logical, replicated) database.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Identifies a site (node) of the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u8);

impl SiteId {
    /// Returns the site index as a usize, for indexing per-site tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TxnId(3).to_string(), "T3");
        assert_eq!(ObjectId(4).to_string(), "O4");
        assert_eq!(SiteId(1).to_string(), "S1");
    }

    #[test]
    fn site_index() {
        assert_eq!(SiteId(2).index(), 2);
    }
}

//! Committed-operation histories.
//!
//! Every simulation records the data operations its committed transactions
//! performed, in the real-time order the locks allowed them to happen. The
//! [`monitor`](../../monitor) crate checks these histories for conflict
//! serialisability — the correctness bar every protocol must clear
//! regardless of its timing behaviour.

use std::fmt;

use serde::{Deserialize, Serialize};
use starlite::SimTime;

use crate::ids::{ObjectId, SiteId, TxnId};

/// The kind of a data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read of the object's current value.
    Read,
    /// A committed write installing a new value.
    Write,
}

impl OpKind {
    /// Two operations conflict when they touch the same object and at
    /// least one writes.
    pub fn conflicts(self, other: OpKind) -> bool {
        self == OpKind::Write || other == OpKind::Write
    }
}

/// One data operation performed by a (later committed) transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    /// The transaction performing the operation.
    pub txn: TxnId,
    /// The object touched.
    pub object: ObjectId,
    /// Read or write.
    pub kind: OpKind,
    /// Virtual time the operation took effect (lock was held).
    pub at: SimTime,
    /// Logical sequence number, assigned in event-execution order; breaks
    /// ties between operations that share a virtual-time tick (possible
    /// with zero communication delay).
    pub seq: u64,
    /// Site where the copy was touched.
    pub site: SiteId,
}

/// An append-only log of committed operations.
///
/// # Example
///
/// ```
/// use rtdb::{History, Operation, OpKind, TxnId, ObjectId, SiteId};
/// use starlite::SimTime;
///
/// let mut h = History::new();
/// h.record(Operation {
///     txn: TxnId(1),
///     object: ObjectId(0),
///     kind: OpKind::Write,
///     at: SimTime::from_ticks(5),
///     seq: 0,
///     site: SiteId(0),
/// });
/// assert_eq!(h.len(), 1);
/// ```
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct History {
    ops: Vec<Operation>,
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("History")
            .field("ops", &self.ops.len())
            .finish()
    }
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends one operation.
    pub fn record(&mut self, op: Operation) {
        self.ops.push(op);
    }

    /// Removes every operation of `txn` (it aborted; its effects never
    /// happened).
    pub fn expunge(&mut self, txn: TxnId) {
        self.ops.retain(|op| op.txn != txn);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All operations, in recording order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(txn: u64, obj: u32, kind: OpKind, at: u64) -> Operation {
        Operation {
            txn: TxnId(txn),
            object: ObjectId(obj),
            kind,
            at: SimTime::from_ticks(at),
            seq: at,
            site: SiteId(0),
        }
    }

    #[test]
    fn conflicts() {
        assert!(OpKind::Write.conflicts(OpKind::Read));
        assert!(OpKind::Read.conflicts(OpKind::Write));
        assert!(OpKind::Write.conflicts(OpKind::Write));
        assert!(!OpKind::Read.conflicts(OpKind::Read));
    }

    #[test]
    fn expunge_removes_aborted_txn() {
        let mut h = History::new();
        h.record(op(1, 0, OpKind::Read, 1));
        h.record(op(2, 0, OpKind::Write, 2));
        h.record(op(1, 1, OpKind::Write, 3));
        h.expunge(TxnId(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h.operations()[0].txn, TxnId(2));
    }
}

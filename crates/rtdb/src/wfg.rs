//! The waits-for graph and deadlock detection.
//!
//! Two-phase locking can deadlock (the paper cites the classic result that
//! deadlock probability grows with the fourth power of transaction size).
//! The transaction manager records, on every block, which transactions the
//! blocked one waits for; a cycle through the new edges is a deadlock and
//! one member must be aborted.
//!
//! The priority ceiling protocol never creates cycles — the integration
//! tests assert that by running the same detector over its blocks.

use starlite::{FxHashMap, FxHashSet};
use std::fmt;

use crate::ids::TxnId;

/// A directed waits-for graph: an edge `a → b` means `a` waits for `b`.
///
/// # Example
///
/// ```
/// use rtdb::{WaitsForGraph, TxnId};
///
/// let mut g = WaitsForGraph::new();
/// g.add_edges(TxnId(1), &[TxnId(2)]);
/// g.add_edges(TxnId(2), &[TxnId(3)]);
/// assert!(g.cycle_from(TxnId(1)).is_none());
/// g.add_edges(TxnId(3), &[TxnId(1)]);
/// let cycle = g.cycle_from(TxnId(3)).expect("deadlock");
/// assert_eq!(cycle.len(), 3);
/// ```
#[derive(Default, Clone)]
pub struct WaitsForGraph {
    edges: FxHashMap<TxnId, FxHashSet<TxnId>>,
}

impl fmt::Debug for WaitsForGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitsForGraph")
            .field("waiters", &self.edges.len())
            .finish()
    }
}

impl WaitsForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WaitsForGraph::default()
    }

    /// Adds edges `waiter → blocker` for every blocker.
    ///
    /// Self-edges are ignored: a transaction never waits for itself (lock
    /// re-requests are granted in place).
    pub fn add_edges(&mut self, waiter: TxnId, blockers: &[TxnId]) {
        let set = self.edges.entry(waiter).or_default();
        for &b in blockers {
            if b != waiter {
                set.insert(b);
            }
        }
    }

    /// Replaces the outgoing edges of `waiter` (its blocker set changed).
    pub fn set_edges(&mut self, waiter: TxnId, blockers: &[TxnId]) {
        self.edges.remove(&waiter);
        if !blockers.is_empty() {
            self.add_edges(waiter, blockers);
        }
    }

    /// Removes `waiter`'s outgoing edges (it is no longer blocked).
    pub fn clear_waiter(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Removes a transaction entirely: its outgoing edges and every edge
    /// pointing at it (it committed or aborted).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for set in self.edges.values_mut() {
            set.remove(&txn);
        }
    }

    /// Searches for a cycle reachable from `start`, returning its members
    /// (in traversal order) if one exists.
    ///
    /// Called right after adding the edges for a newly blocked transaction:
    /// any fresh deadlock must pass through `start`.
    pub fn cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS with an explicit path stack.
        let mut on_path: Vec<TxnId> = Vec::new();
        let mut on_path_set: FxHashSet<TxnId> = FxHashSet::default();
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        // Stack holds (node, next-neighbour-iterator position).
        let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();

        let neighbours = |t: TxnId| -> Vec<TxnId> {
            let mut v: Vec<TxnId> = self
                .edges
                .get(&t)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            v.sort_unstable();
            v
        };

        stack.push((start, neighbours(start), 0));
        on_path.push(start);
        on_path_set.insert(start);

        while let Some((node, ns, idx)) = stack.last_mut() {
            if *idx >= ns.len() {
                visited.insert(*node);
                on_path_set.remove(node);
                on_path.pop();
                stack.pop();
                continue;
            }
            let next = ns[*idx];
            *idx += 1;
            if on_path_set.contains(&next) {
                // Cycle: slice of the path from `next` onwards.
                let pos = on_path.iter().position(|&t| t == next).expect("on path");
                return Some(on_path[pos..].to_vec());
            }
            if !visited.contains(&next) {
                on_path.push(next);
                on_path_set.insert(next);
                stack.push((next, neighbours(next), 0));
            }
        }
        None
    }

    /// Returns `true` if any cycle exists anywhere in the graph.
    ///
    /// Single coloured DFS over the whole graph: the visited (black) set is
    /// shared across start nodes, so every node and edge is traversed at
    /// most once — O(V + E), cheap enough for the invariant oracle to call
    /// after every blocking-edge insertion.
    pub fn has_any_cycle(&self) -> bool {
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        let mut on_path: FxHashSet<TxnId> = FxHashSet::default();
        let mut roots: Vec<TxnId> = self.edges.keys().copied().collect();
        roots.sort_unstable();

        let neighbours = |t: TxnId| -> Vec<TxnId> {
            let mut v: Vec<TxnId> = self
                .edges
                .get(&t)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            v.sort_unstable();
            v
        };

        let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
        for root in roots {
            if visited.contains(&root) {
                continue;
            }
            stack.push((root, neighbours(root), 0));
            on_path.insert(root);
            while let Some((node, ns, idx)) = stack.last_mut() {
                if *idx >= ns.len() {
                    visited.insert(*node);
                    on_path.remove(node);
                    stack.pop();
                    continue;
                }
                let next = ns[*idx];
                *idx += 1;
                if on_path.contains(&next) {
                    return true;
                }
                if !visited.contains(&next) {
                    on_path.insert(next);
                    stack.push((next, neighbours(next), 0));
                }
            }
        }
        false
    }

    /// Current outgoing edges of `txn`, sorted.
    pub fn blockers_of(&self, txn: TxnId) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .edges
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Number of transactions with outgoing edges.
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_chain() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2)]);
        g.add_edges(TxnId(2), &[TxnId(3)]);
        assert!(g.cycle_from(TxnId(1)).is_none());
        assert!(!g.has_any_cycle());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2)]);
        g.add_edges(TxnId(2), &[TxnId(1)]);
        let c = g.cycle_from(TxnId(2)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&TxnId(1)) && c.contains(&TxnId(2)));
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(1)]);
        assert!(g.cycle_from(TxnId(1)).is_none());
    }

    #[test]
    fn cycle_not_reachable_from_start_is_missed_but_found_globally() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2)]);
        g.add_edges(TxnId(3), &[TxnId(4)]);
        g.add_edges(TxnId(4), &[TxnId(3)]);
        assert!(g.cycle_from(TxnId(1)).is_none());
        assert!(g.has_any_cycle());
    }

    #[test]
    fn remove_txn_breaks_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2)]);
        g.add_edges(TxnId(2), &[TxnId(3)]);
        g.add_edges(TxnId(3), &[TxnId(1)]);
        assert!(g.has_any_cycle());
        g.remove_txn(TxnId(2));
        assert!(!g.has_any_cycle());
        assert!(g.blockers_of(TxnId(1)).is_empty());
        assert_eq!(g.blockers_of(TxnId(3)), vec![TxnId(1)]);
    }

    #[test]
    fn set_edges_replaces() {
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2), TxnId(3)]);
        g.set_edges(TxnId(1), &[TxnId(4)]);
        assert_eq!(g.blockers_of(TxnId(1)), vec![TxnId(4)]);
        g.set_edges(TxnId(1), &[]);
        assert_eq!(g.waiter_count(), 0);
    }

    #[test]
    fn cross_edge_into_finished_subtree_is_not_a_cycle() {
        // 1 → 2 → 3 finishes first (all black); the later root 4 → 2
        // reaches only black nodes. A detector confusing "visited" with
        // "on the current path" would report a bogus cycle here.
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2)]);
        g.add_edges(TxnId(2), &[TxnId(3)]);
        g.add_edges(TxnId(4), &[TxnId(2)]);
        assert!(!g.has_any_cycle());
    }

    #[test]
    fn cycle_behind_shared_prefix_is_found() {
        // Root 1 explores 2 and 3 fully; the cycle 5 ⇄ 6 hangs off a
        // different root and must still be found after the shared-visited
        // pass over the first component.
        let mut g = WaitsForGraph::new();
        g.add_edges(TxnId(1), &[TxnId(2), TxnId(3)]);
        g.add_edges(TxnId(2), &[TxnId(3)]);
        g.add_edges(TxnId(5), &[TxnId(6)]);
        g.add_edges(TxnId(6), &[TxnId(5)]);
        assert!(g.has_any_cycle());
    }

    #[test]
    fn dense_acyclic_graph_has_no_cycle() {
        // Layered DAG with every node pointing at the whole next layer;
        // quadratic in edges but each edge must be walked only once.
        let mut g = WaitsForGraph::new();
        let layers = 20u64;
        let width = 10u64;
        for l in 0..layers - 1 {
            for i in 0..width {
                let targets: Vec<TxnId> = (0..width).map(|j| TxnId((l + 1) * width + j)).collect();
                g.add_edges(TxnId(l * width + i), &targets);
            }
        }
        assert!(!g.has_any_cycle());
    }

    #[test]
    fn long_cycle_members_reported() {
        let mut g = WaitsForGraph::new();
        for i in 0..10u64 {
            g.add_edges(TxnId(i), &[TxnId((i + 1) % 10)]);
        }
        let c = g.cycle_from(TxnId(0)).unwrap();
        assert_eq!(c.len(), 10);
    }
}

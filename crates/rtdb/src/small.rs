//! A small-vector type for hot-path collections.
//!
//! Lock holder lists are overwhelmingly short: most objects have one
//! holder, read-shared objects a handful. Storing them in a `Vec` puts a
//! heap allocation on every first lock of an object; [`InlineVec`] keeps up
//! to `N` elements inline in the parent struct and only spills to the heap
//! beyond that.
//!
//! This is a deliberately minimal, `unsafe`-free take on the usual
//! small-vector design: elements must be `Copy + Default` so the inline
//! buffer can be a plain array (vacant cells hold `T::default()` and are
//! never observed). Once a spill happens, all elements live in the heap
//! vector until the collection empties — re-inlining on shrink would buy
//! little and complicate the invariant.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline, spilling to the heap beyond.
///
/// Invariant: either `spill` is empty and the first `len` cells of `inline`
/// hold the elements, or `spill` holds *all* elements (`len == spill.len()`).
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() {
            if self.len < N {
                self.inline[self.len] = value;
                self.len += 1;
                return;
            }
            // First spill: move the inline prefix to the heap.
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
        }
        self.spill.push(value);
        self.len += 1;
    }

    /// Appends every element of `xs` in order.
    pub fn extend_from_slice(&mut self, xs: &[T]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Keeps only the elements for which `f` returns `true`, preserving
    /// order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        if self.spill.is_empty() {
            let mut kept = 0;
            for i in 0..self.len {
                if f(&self.inline[i]) {
                    self.inline[kept] = self.inline[i];
                    kept += 1;
                }
            }
            self.len = kept;
        } else {
            self.spill.retain(|v| f(v));
            self.len = self.spill.len();
        }
    }

    /// Removes all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// The elements as a contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// `true` once elements have spilled to the heap.
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn retain_inline_and_spilled() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        for i in 0..3 {
            v.push(i);
        }
        v.retain(|&x| x != 1);
        assert_eq!(v.as_slice(), &[0, 2]);

        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.as_slice(), &[0, 2, 4]);
        // Spilled representation persists after shrinking below N.
        v.retain(|&x| x == 0);
        assert_eq!(v.as_slice(), &[0]);
        v.push(9);
        assert_eq!(v.as_slice(), &[0, 9]);
    }

    #[test]
    fn clear_returns_to_inline_mode() {
        let mut v: InlineVec<u32, 1> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert!(v.spilled());
        v.clear();
        assert!(v.is_empty());
        assert!(!v.spilled());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(3);
        v.push(1);
        assert!(v.contains(&3));
        assert_eq!(v[1], 1);
        for x in v.iter_mut() {
            *x += 10;
        }
        assert_eq!(v.as_slice(), &[13, 11]);
    }
}

//! Transaction specifications and runtime state.
//!
//! A [`TxnSpec`] is the immutable description the workload generator
//! produces: arrival time, declared read and write sets (the priority
//! ceiling protocol requires declared access sets to compute ceilings),
//! deadline, and home site. [`TxnState`] is the lifecycle the transaction
//! manager drives.

use std::fmt;

use serde::{Deserialize, Serialize};
use starlite::{Priority, SimTime};

use crate::ids::{ObjectId, SiteId, TxnId};
use crate::lock::LockMode;

/// Read-only or update, as in the paper's load characteristics menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// Reads only; never writes.
    ReadOnly,
    /// Reads and writes.
    Update,
}

/// Lifecycle of a transaction inside the transaction manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnState {
    /// Generated but not yet arrived.
    Pending,
    /// Arrived; executing its operation sequence.
    Running,
    /// Blocked waiting for a lock or a ceiling.
    Blocked,
    /// Finished successfully before its deadline.
    Committed,
    /// Aborted by its deadline expiring.
    MissedDeadline,
    /// Aborted as a deadlock victim and awaiting restart.
    Restarting,
}

/// The immutable description of one transaction.
///
/// # Example
///
/// ```
/// use rtdb::{TxnSpec, TxnId, ObjectId, SiteId, TxnKind};
/// use starlite::SimTime;
///
/// let spec = TxnSpec::new(
///     TxnId(1),
///     SimTime::from_ticks(100),
///     vec![ObjectId(3)],
///     vec![ObjectId(7)],
///     SimTime::from_ticks(900),
///     SiteId(0),
/// );
/// assert_eq!(spec.size(), 2);
/// assert_eq!(spec.kind(), TxnKind::Update);
/// assert!(spec.writes(ObjectId(7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Transaction identity (stable across deadlock restarts).
    pub id: TxnId,
    /// Time the transaction enters the system, ready to execute.
    pub arrival: SimTime,
    /// Objects read but not written, in access order.
    pub read_set: Vec<ObjectId>,
    /// Objects written (each also read first), in access order.
    pub write_set: Vec<ObjectId>,
    /// Hard deadline; missing it makes completion worthless.
    pub deadline: SimTime,
    /// Site where the transaction executes.
    pub home_site: SiteId,
}

impl TxnSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if the access sets overlap or are both empty, or if the
    /// deadline is not after the arrival.
    pub fn new(
        id: TxnId,
        arrival: SimTime,
        read_set: Vec<ObjectId>,
        write_set: Vec<ObjectId>,
        deadline: SimTime,
        home_site: SiteId,
    ) -> Self {
        assert!(
            !(read_set.is_empty() && write_set.is_empty()),
            "a transaction must access at least one object"
        );
        assert!(
            read_set.iter().all(|o| !write_set.contains(o)),
            "read and write sets must be disjoint (writes imply reads)"
        );
        assert!(deadline > arrival, "deadline must be after arrival");
        TxnSpec {
            id,
            arrival,
            read_set,
            write_set,
            deadline,
            home_site,
        }
    }

    /// Total number of objects accessed (the paper's "transaction size").
    pub fn size(&self) -> usize {
        self.read_set.len() + self.write_set.len()
    }

    /// Read-only or update.
    pub fn kind(&self) -> TxnKind {
        if self.write_set.is_empty() {
            TxnKind::ReadOnly
        } else {
            TxnKind::Update
        }
    }

    /// The transaction's base priority under the paper's rule: earliest
    /// deadline, highest priority.
    pub fn base_priority(&self) -> Priority {
        Priority::earliest_deadline_first(self.deadline)
    }

    /// Whether the transaction writes `obj`.
    pub fn writes(&self, obj: ObjectId) -> bool {
        self.write_set.contains(&obj)
    }

    /// Whether the transaction reads or writes `obj`.
    pub fn accesses(&self, obj: ObjectId) -> bool {
        self.read_set.contains(&obj) || self.write_set.contains(&obj)
    }

    /// The access sequence: every object with the lock mode it needs,
    /// reads first then writes (writes are typically performed at the end
    /// of the computation in tracking tasks).
    pub fn access_sequence(&self) -> Vec<(ObjectId, LockMode)> {
        self.access_ops().collect()
    }

    /// Iterator form of [`TxnSpec::access_sequence`], for hot paths that
    /// refill reusable buffers instead of allocating a fresh vector per
    /// transaction.
    pub fn access_ops(&self) -> impl Iterator<Item = (ObjectId, LockMode)> + '_ {
        self.read_set
            .iter()
            .map(|&o| (o, LockMode::Read))
            .chain(self.write_set.iter().map(|&o| (o, LockMode::Write)))
    }
}

impl fmt::Display for TxnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} r{}w{} dl={}",
            self.id,
            self.home_site,
            self.read_set.len(),
            self.write_set.len(),
            self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(reads: Vec<u32>, writes: Vec<u32>) -> TxnSpec {
        TxnSpec::new(
            TxnId(1),
            SimTime::from_ticks(10),
            reads.into_iter().map(ObjectId).collect(),
            writes.into_iter().map(ObjectId).collect(),
            SimTime::from_ticks(100),
            SiteId(0),
        )
    }

    #[test]
    fn size_and_kind() {
        let s = spec(vec![1, 2], vec![3]);
        assert_eq!(s.size(), 3);
        assert_eq!(s.kind(), TxnKind::Update);
        assert_eq!(spec(vec![1], vec![]).kind(), TxnKind::ReadOnly);
    }

    #[test]
    fn access_sequence_orders_reads_then_writes() {
        let s = spec(vec![5, 2], vec![9]);
        assert_eq!(
            s.access_sequence(),
            vec![
                (ObjectId(5), LockMode::Read),
                (ObjectId(2), LockMode::Read),
                (ObjectId(9), LockMode::Write),
            ]
        );
    }

    #[test]
    fn edf_priority_orders_by_deadline() {
        let early = TxnSpec::new(
            TxnId(1),
            SimTime::ZERO,
            vec![ObjectId(0)],
            vec![],
            SimTime::from_ticks(50),
            SiteId(0),
        );
        let late = TxnSpec::new(
            TxnId(2),
            SimTime::ZERO,
            vec![ObjectId(0)],
            vec![],
            SimTime::from_ticks(90),
            SiteId(0),
        );
        assert!(early.base_priority() > late.base_priority());
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_access_sets_panic() {
        spec(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sets_panic() {
        spec(vec![1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "after arrival")]
    fn deadline_before_arrival_panics() {
        TxnSpec::new(
            TxnId(1),
            SimTime::from_ticks(10),
            vec![ObjectId(0)],
            vec![],
            SimTime::from_ticks(10),
            SiteId(0),
        );
    }
}

//! Property-based tests of the workload generator.

use proptest::prelude::*;
use rtdb::{Catalog, Placement, TxnKind};
use starlite::SimDuration;
use workload::{Generator, SizeDistribution, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = (WorkloadSpec, u8, u32)> {
    (
        1u32..80,      // txn count
        100u64..5_000, // mean interarrival
        1u32..6,       // min size
        0u32..8,       // extra size
        0.0f64..=1.0,  // read-only fraction
        0.05f64..=1.0, // write fraction
        1.0f64..10.0,  // slack
        1u8..4,        // sites
        30u32..120,    // db size
    )
        .prop_map(|(n, inter, smin, sextra, ro, wf, slack, sites, db)| {
            let spec = WorkloadSpec::builder()
                .txn_count(n)
                .mean_interarrival(SimDuration::from_ticks(inter))
                .size(SizeDistribution::Uniform {
                    min: smin,
                    max: smin + sextra,
                })
                .read_only_fraction(ro)
                .write_fraction(wf)
                .deadline(slack, SimDuration::from_ticks(500))
                .build();
            (spec, sites, db)
        })
}

proptest! {
    /// Every generated stream satisfies the structural invariants the
    /// simulators rely on, for any spec and seed.
    #[test]
    fn generated_streams_are_well_formed(
        (spec, sites, db) in spec_strategy(),
        seed in 0u64..1_000,
    ) {
        let placement = if sites == 1 {
            Placement::SingleSite
        } else {
            Placement::FullyReplicated
        };
        let catalog = Catalog::new(db, sites, placement);
        let txns = Generator::new(&spec, &catalog).generate(seed);
        prop_assert_eq!(txns.len(), spec.txn_count as usize);

        let mut prev_arrival = None;
        for t in &txns {
            // Arrival order and id order agree.
            if let Some(p) = prev_arrival {
                prop_assert!(t.arrival >= p);
            }
            prev_arrival = Some(t.arrival);
            // Size bounds.
            let (lo, hi) = match spec.size {
                SizeDistribution::Fixed(n) => (n, n),
                SizeDistribution::Uniform { min, max } => (min, max),
            };
            prop_assert!((lo..=hi).contains(&(t.size() as u32)));
            // Sets are disjoint and in range (TxnSpec::new checks
            // disjointness; re-check range here).
            for o in t.read_set.iter().chain(&t.write_set) {
                prop_assert!(o.0 < db);
            }
            // Deadline rule.
            prop_assert_eq!(
                t.deadline.since(t.arrival),
                spec.deadline.offset(t.size() as u32)
            );
            // Placement restriction 2: writes are primary at home.
            if t.kind() == TxnKind::Update {
                for &w in &t.write_set {
                    prop_assert_eq!(catalog.primary_site(w), t.home_site);
                }
                prop_assert!(!t.write_set.is_empty());
            }
            prop_assert!(t.home_site.0 < sites);
        }
    }

    /// The generator is a pure function of (spec, catalog, seed).
    #[test]
    fn generation_is_deterministic(
        (spec, sites, db) in spec_strategy(),
        seed in 0u64..1_000,
    ) {
        let placement = if sites == 1 {
            Placement::SingleSite
        } else {
            Placement::FullyReplicated
        };
        let catalog = Catalog::new(db, sites, placement);
        let a = Generator::new(&spec, &catalog).generate(seed);
        let b = Generator::new(&spec, &catalog).generate(seed);
        prop_assert_eq!(a, b);
    }
}

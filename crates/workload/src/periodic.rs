//! Periodic transaction tasks.
//!
//! The paper's motivating applications (tracking) run periodic update
//! transactions — each radar station refreshes its view of its own tracks
//! every scan — alongside aperiodic queries. A [`PeriodicTask`] describes
//! one such stream: a fixed access set re-executed every period, with each
//! instance's deadline at the end of its period (the classic implicit
//! deadline).

use serde::{Deserialize, Serialize};
use starlite::SimDuration;

use rtdb::{ObjectId, SiteId};

/// One periodic transaction stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicTask {
    /// Period between consecutive instances (also the relative deadline).
    pub period: SimDuration,
    /// Objects read (not written) by each instance.
    pub read_set: Vec<ObjectId>,
    /// Objects written by each instance.
    pub write_set: Vec<ObjectId>,
    /// Site the instances execute at.
    pub site: SiteId,
    /// Number of instances to release (bounds the generated load).
    pub instances: u32,
}

impl PeriodicTask {
    /// Creates a periodic task.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero, the access sets are both empty or
    /// overlap, or `instances` is zero.
    pub fn new(
        period: SimDuration,
        read_set: Vec<ObjectId>,
        write_set: Vec<ObjectId>,
        site: SiteId,
        instances: u32,
    ) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(
            !(read_set.is_empty() && write_set.is_empty()),
            "a periodic task must access at least one object"
        );
        assert!(
            read_set.iter().all(|o| !write_set.contains(o)),
            "read and write sets must be disjoint"
        );
        assert!(instances > 0, "a periodic task needs at least one instance");
        PeriodicTask {
            period,
            read_set,
            write_set,
            site,
            instances,
        }
    }

    /// Objects accessed per instance.
    pub fn size(&self) -> usize {
        self.read_set.len() + self.write_set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let t = PeriodicTask::new(
            SimDuration::from_millis(10),
            vec![ObjectId(1)],
            vec![ObjectId(2), ObjectId(3)],
            SiteId(0),
            5,
        );
        assert_eq!(t.size(), 3);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        PeriodicTask::new(SimDuration::ZERO, vec![ObjectId(1)], vec![], SiteId(0), 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sets_panic() {
        PeriodicTask::new(
            SimDuration::from_ticks(5),
            vec![ObjectId(1)],
            vec![ObjectId(1)],
            SiteId(0),
            1,
        );
    }
}

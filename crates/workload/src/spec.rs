//! Workload specification and builder.

use std::fmt;

use serde::{Deserialize, Serialize};
use starlite::SimDuration;

use crate::periodic::PeriodicTask;

/// Distribution of transaction sizes (number of objects accessed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every transaction accesses exactly this many objects.
    Fixed(u32),
    /// Uniform over the inclusive range.
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
}

impl SizeDistribution {
    /// The expected size under the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDistribution::Fixed(n) => n as f64,
            SizeDistribution::Uniform { min, max } => (min + max) as f64 / 2.0,
        }
    }

    /// The largest possible size.
    pub fn max(&self) -> u32 {
        match *self {
            SizeDistribution::Fixed(n) => n,
            SizeDistribution::Uniform { max, .. } => max,
        }
    }

    fn validate(&self) {
        match *self {
            SizeDistribution::Fixed(n) => assert!(n > 0, "transaction size must be positive"),
            SizeDistribution::Uniform { min, max } => {
                assert!(min > 0 && min <= max, "invalid size range");
            }
        }
    }
}

/// How deadlines are assigned.
///
/// The paper sets each deadline "in proportion to its size and system
/// workload": `deadline = arrival + slack_factor × size × per_object_cost`.
/// The per-object cost is the transaction's nominal per-object processing
/// time (CPU + I/O), and the slack factor encodes how tight the system is
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlineRule {
    /// Multiplier on the nominal execution time.
    pub slack_factor: f64,
    /// Nominal time to process one object.
    pub per_object_cost: SimDuration,
}

impl DeadlineRule {
    /// The deadline offset for a transaction of `size` objects.
    ///
    /// # Example
    ///
    /// ```
    /// use workload::DeadlineRule;
    /// use starlite::SimDuration;
    ///
    /// let rule = DeadlineRule {
    ///     slack_factor: 3.0,
    ///     per_object_cost: SimDuration::from_ticks(10),
    /// };
    /// assert_eq!(rule.offset(4), SimDuration::from_ticks(120));
    /// ```
    pub fn offset(&self, size: u32) -> SimDuration {
        (self.per_object_cost * size as u64).mul_f64(self.slack_factor)
    }
}

/// A complete workload description; build one with [`WorkloadSpec::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of aperiodic transactions to generate.
    pub txn_count: u32,
    /// Mean of the exponential interarrival distribution.
    pub mean_interarrival: SimDuration,
    /// Transaction size distribution.
    pub size: SizeDistribution,
    /// Fraction of transactions that are read-only (the Figure 4/6 "mix"
    /// axis).
    pub read_only_fraction: f64,
    /// Within an update transaction, the fraction of accesses that are
    /// writes (at least one write is forced).
    pub write_fraction: f64,
    /// When set, read-only transactions scan a *contiguous* object range
    /// instead of sampling uniformly — the shape range latches and
    /// snapshot reads are built for. Off by default; turning it off draws
    /// exactly the same stream as before the flag existed.
    pub scan_readers: bool,
    /// Deadline assignment rule.
    pub deadline: DeadlineRule,
    /// Periodic tasks generated alongside the aperiodic stream.
    pub periodic: Vec<PeriodicTask>,
}

impl WorkloadSpec {
    /// Starts building a specification.
    pub fn builder() -> WorkloadSpecBuilder {
        WorkloadSpecBuilder::new()
    }

    /// The offered load in objects per tick: mean size over mean
    /// interarrival. Values near or above `1 / per_object_cpu` saturate
    /// the CPU.
    pub fn offered_object_rate(&self) -> f64 {
        self.size.mean() / self.mean_interarrival.ticks() as f64
    }
}

/// Builder for [`WorkloadSpec`].
///
/// # Example
///
/// ```
/// use workload::{WorkloadSpec, SizeDistribution};
/// use starlite::SimDuration;
///
/// let spec = WorkloadSpec::builder()
///     .txn_count(200)
///     .mean_interarrival(SimDuration::from_ticks(120))
///     .size(SizeDistribution::Fixed(8))
///     .read_only_fraction(0.5)
///     .deadline(4.0, SimDuration::from_ticks(30))
///     .build();
/// assert_eq!(spec.txn_count, 200);
/// ```
#[derive(Clone)]
pub struct WorkloadSpecBuilder {
    spec: WorkloadSpec,
}

impl fmt::Debug for WorkloadSpecBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpecBuilder")
            .field("spec", &self.spec)
            .finish()
    }
}

impl WorkloadSpecBuilder {
    /// Creates a builder with conservative defaults: 100 transactions,
    /// mean interarrival 1 ms, fixed size 4, all-update with a 50 % write
    /// fraction, slack factor 5 over a 100-tick per-object cost.
    pub fn new() -> Self {
        WorkloadSpecBuilder {
            spec: WorkloadSpec {
                txn_count: 100,
                mean_interarrival: SimDuration::from_millis(1),
                size: SizeDistribution::Fixed(4),
                read_only_fraction: 0.0,
                write_fraction: 0.5,
                scan_readers: false,
                deadline: DeadlineRule {
                    slack_factor: 5.0,
                    per_object_cost: SimDuration::from_ticks(100),
                },
                periodic: Vec::new(),
            },
        }
    }

    /// Sets the number of aperiodic transactions.
    pub fn txn_count(mut self, n: u32) -> Self {
        self.spec.txn_count = n;
        self
    }

    /// Sets the mean interarrival time.
    pub fn mean_interarrival(mut self, d: SimDuration) -> Self {
        self.spec.mean_interarrival = d;
        self
    }

    /// Sets the size distribution.
    pub fn size(mut self, s: SizeDistribution) -> Self {
        self.spec.size = s;
        self
    }

    /// Sets the read-only fraction of the mix.
    pub fn read_only_fraction(mut self, f: f64) -> Self {
        self.spec.read_only_fraction = f;
        self
    }

    /// Sets the write fraction within update transactions.
    pub fn write_fraction(mut self, f: f64) -> Self {
        self.spec.write_fraction = f;
        self
    }

    /// Makes read-only transactions scan contiguous object ranges.
    pub fn scan_readers(mut self, scan: bool) -> Self {
        self.spec.scan_readers = scan;
        self
    }

    /// Sets the deadline rule.
    pub fn deadline(mut self, slack_factor: f64, per_object_cost: SimDuration) -> Self {
        self.spec.deadline = DeadlineRule {
            slack_factor,
            per_object_cost,
        };
        self
    }

    /// Adds a periodic task.
    pub fn periodic(mut self, task: PeriodicTask) -> Self {
        self.spec.periodic.push(task);
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters: zero counts or durations, fractions
    /// outside `[0, 1]`, non-positive slack, or an invalid size range.
    pub fn build(self) -> WorkloadSpec {
        let s = &self.spec;
        assert!(
            s.txn_count > 0 || !s.periodic.is_empty(),
            "a workload needs transactions"
        );
        assert!(
            !s.mean_interarrival.is_zero(),
            "interarrival mean must be positive"
        );
        s.size.validate();
        assert!(
            (0.0..=1.0).contains(&s.read_only_fraction),
            "read-only fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&s.write_fraction),
            "write fraction out of range"
        );
        assert!(
            s.deadline.slack_factor > 0.0,
            "slack factor must be positive"
        );
        assert!(
            !s.deadline.per_object_cost.is_zero(),
            "per-object cost must be positive"
        );
        self.spec
    }
}

impl Default for WorkloadSpecBuilder {
    fn default() -> Self {
        WorkloadSpecBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_distribution_stats() {
        assert_eq!(SizeDistribution::Fixed(8).mean(), 8.0);
        assert_eq!(SizeDistribution::Uniform { min: 2, max: 6 }.mean(), 4.0);
        assert_eq!(SizeDistribution::Uniform { min: 2, max: 6 }.max(), 6);
    }

    #[test]
    fn deadline_offset_scales_with_size() {
        let rule = DeadlineRule {
            slack_factor: 2.5,
            per_object_cost: SimDuration::from_ticks(20),
        };
        assert_eq!(rule.offset(2), SimDuration::from_ticks(100));
        assert_eq!(rule.offset(10), SimDuration::from_ticks(500));
    }

    #[test]
    fn offered_rate() {
        let spec = WorkloadSpec::builder()
            .size(SizeDistribution::Fixed(10))
            .mean_interarrival(SimDuration::from_ticks(100))
            .build();
        assert!((spec.offered_object_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "read-only fraction")]
    fn bad_fraction_panics() {
        WorkloadSpec::builder().read_only_fraction(1.5).build();
    }

    #[test]
    #[should_panic(expected = "invalid size range")]
    fn bad_size_range_panics() {
        WorkloadSpec::builder()
            .size(SizeDistribution::Uniform { min: 5, max: 2 })
            .build();
    }
}

//! # workload — real-time transaction load generation
//!
//! Reproduces the paper's "load characteristics" menu: the number of
//! transactions to execute, the size of their read and write sets,
//! transaction types (read-only/update and periodic/aperiodic) with their
//! priorities, and the mean interarrival time of aperiodic transactions.
//!
//! The paper's workload model (§3.3, §4):
//!
//! * transactions are generated with **exponentially distributed
//!   interarrival times**;
//! * data objects are chosen **uniformly from the database**;
//! * each transaction's **deadline is proportional to its size** and the
//!   system workload, and the **earliest deadline gets the highest
//!   priority**;
//! * in the distributed experiments, **update transactions are assigned to
//!   a site based on their write-set** (their writes must be primary
//!   copies at that site) and **read-only transactions are distributed
//!   randomly**.
//!
//! Everything is deterministic in the seed handed to
//! [`Generator::generate`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod periodic;
pub mod spec;

pub use generator::Generator;
pub use periodic::PeriodicTask;
pub use spec::{DeadlineRule, SizeDistribution, WorkloadSpec, WorkloadSpecBuilder};

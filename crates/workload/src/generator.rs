//! The transaction generator.
//!
//! Turns a [`WorkloadSpec`] and a database [`Catalog`] into a concrete,
//! deterministic stream of [`TxnSpec`]s. Placement follows the paper's
//! distributed model: update transactions are assigned to a site and their
//! write sets drawn from that site's primary copies (restriction 2 of §4);
//! read-only transactions land at a uniformly random site and read from the
//! whole database (every site holds a full replica).

use std::fmt;

use rtdb::{Catalog, ObjectId, Placement, SiteId, TxnId, TxnSpec};
use starlite::{RandomSource, SimTime};

use crate::spec::{SizeDistribution, WorkloadSpec};

/// Deterministic transaction stream generator.
///
/// # Example
///
/// ```
/// use workload::{Generator, WorkloadSpec, SizeDistribution};
/// use rtdb::{Catalog, Placement};
/// use starlite::SimDuration;
///
/// let catalog = Catalog::new(100, 1, Placement::SingleSite);
/// let spec = WorkloadSpec::builder()
///     .txn_count(50)
///     .size(SizeDistribution::Uniform { min: 2, max: 6 })
///     .build();
/// let txns = Generator::new(&spec, &catalog).generate(7);
/// assert_eq!(txns.len(), 50);
/// // Determinism: the same seed yields the same stream.
/// assert_eq!(txns, Generator::new(&spec, &catalog).generate(7));
/// ```
pub struct Generator<'a> {
    spec: &'a WorkloadSpec,
    catalog: &'a Catalog,
}

impl fmt::Debug for Generator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Generator")
            .field("txn_count", &self.spec.txn_count)
            .field("db_size", &self.catalog.db_size())
            .finish()
    }
}

impl<'a> Generator<'a> {
    /// Creates a generator for the given spec over the given catalog.
    ///
    /// # Panics
    ///
    /// Panics if the maximum transaction size exceeds the database size,
    /// or if any periodic task references objects outside the catalog.
    pub fn new(spec: &'a WorkloadSpec, catalog: &'a Catalog) -> Self {
        assert!(
            spec.size.max() <= catalog.db_size(),
            "transaction size {} exceeds database size {}",
            spec.size.max(),
            catalog.db_size()
        );
        for task in &spec.periodic {
            for o in task.read_set.iter().chain(&task.write_set) {
                assert!(
                    o.0 < catalog.db_size(),
                    "periodic task object {o} out of range"
                );
            }
            assert!(
                task.site.0 < catalog.site_count(),
                "periodic task site out of range"
            );
        }
        Generator { spec, catalog }
    }

    /// Generates the full transaction stream, sorted by arrival time.
    ///
    /// Transaction ids are assigned after sorting, so id order equals
    /// arrival order — useful for debugging, never relied upon by the
    /// protocols.
    pub fn generate(&self, seed: u64) -> Vec<TxnSpec> {
        let mut rng = RandomSource::new(seed);
        let mut aperiodic_rng = rng.split();
        let mut periodic_rng = rng.split();

        let mut raw: Vec<RawTxn> = Vec::new();
        self.generate_aperiodic(&mut aperiodic_rng, &mut raw);
        self.generate_periodic(&mut periodic_rng, &mut raw);

        // Sort by arrival (stable tie-break by generation order), then
        // assign ids.
        raw.sort_by_key(|t| t.arrival);
        raw.into_iter()
            .enumerate()
            .map(|(i, t)| {
                TxnSpec::new(
                    TxnId(i as u64),
                    t.arrival,
                    t.read_set,
                    t.write_set,
                    t.arrival + self.spec.deadline.offset(t.size),
                    t.site,
                )
            })
            .collect()
    }

    fn generate_aperiodic(&self, rng: &mut RandomSource, out: &mut Vec<RawTxn>) {
        let mut clock = SimTime::ZERO;
        for _ in 0..self.spec.txn_count {
            clock += rng.exponential(self.spec.mean_interarrival);
            let size = self.draw_size(rng);
            let read_only = rng.chance(self.spec.read_only_fraction);
            let (site, read_set, write_set) = if read_only {
                let site = self.random_site(rng);
                let reads = if self.spec.scan_readers {
                    // A contiguous scan range [start, start + size).
                    let start =
                        rng.uniform_inclusive(0, (self.catalog.db_size() - size) as u64) as u32;
                    (start..start + size).map(ObjectId).collect()
                } else {
                    self.sample_objects(rng, size as usize)
                };
                (site, reads, Vec::new())
            } else {
                self.place_update(rng, size)
            };
            out.push(RawTxn {
                arrival: clock,
                read_set,
                write_set,
                size,
                site,
            });
        }
    }

    fn generate_periodic(&self, _rng: &mut RandomSource, out: &mut Vec<RawTxn>) {
        for task in &self.spec.periodic {
            for k in 0..task.instances {
                let arrival = SimTime::ZERO + task.period * k as u64;
                out.push(RawTxn {
                    arrival,
                    read_set: task.read_set.clone(),
                    write_set: task.write_set.clone(),
                    size: task.size() as u32,
                    site: task.site,
                });
            }
        }
    }

    fn draw_size(&self, rng: &mut RandomSource) -> u32 {
        match self.spec.size {
            SizeDistribution::Fixed(n) => n,
            SizeDistribution::Uniform { min, max } => {
                rng.uniform_inclusive(min as u64, max as u64) as u32
            }
        }
    }

    fn random_site(&self, rng: &mut RandomSource) -> SiteId {
        SiteId(rng.uniform_inclusive(0, self.catalog.site_count() as u64 - 1) as u8)
    }

    /// Objects drawn uniformly from the whole database.
    fn sample_objects(&self, rng: &mut RandomSource, n: usize) -> Vec<ObjectId> {
        rng.sample_distinct(n, self.catalog.db_size() as u64)
            .into_iter()
            .map(|v| ObjectId(v as u32))
            .collect()
    }

    /// Places an update transaction: pick a home site, draw its writes
    /// from that site's primary copies, and its reads from the rest of the
    /// database.
    fn place_update(
        &self,
        rng: &mut RandomSource,
        size: u32,
    ) -> (SiteId, Vec<ObjectId>, Vec<ObjectId>) {
        let size = size as usize;
        let mut writes = ((size as f64) * self.spec.write_fraction).round() as usize;
        writes = writes.clamp(1, size);
        let reads = size - writes;

        if self.catalog.placement() == Placement::SingleSite {
            let mut objs = self.sample_objects(rng, size);
            let write_set = objs.split_off(reads);
            return (SiteId(0), objs, write_set);
        }

        let site = self.random_site(rng);
        let primaries: Vec<ObjectId> = self.catalog.primaries_at(site).collect();
        assert!(
            primaries.len() >= writes,
            "site {site} holds too few primaries for a {writes}-write transaction"
        );
        // Draw writes from the site's primaries.
        let write_idx = rng.sample_distinct(writes, primaries.len() as u64);
        let write_set: Vec<ObjectId> = write_idx
            .into_iter()
            .map(|i| primaries[i as usize])
            .collect();
        // Draw reads from the remaining objects (any site; local replicas
        // serve them).
        let mut read_set = Vec::with_capacity(reads);
        while read_set.len() < reads {
            let candidate =
                ObjectId(rng.uniform_inclusive(0, self.catalog.db_size() as u64 - 1) as u32);
            if !write_set.contains(&candidate) && !read_set.contains(&candidate) {
                read_set.push(candidate);
            }
        }
        (site, read_set, write_set)
    }
}

struct RawTxn {
    arrival: SimTime,
    read_set: Vec<ObjectId>,
    write_set: Vec<ObjectId>,
    size: u32,
    site: SiteId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::PeriodicTask;
    use rtdb::TxnKind;
    use starlite::SimDuration;

    fn single_site_catalog() -> Catalog {
        Catalog::new(120, 1, Placement::SingleSite)
    }

    fn replicated_catalog() -> Catalog {
        Catalog::new(90, 3, Placement::FullyReplicated)
    }

    #[test]
    fn determinism() {
        let cat = single_site_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(40)
            .size(SizeDistribution::Uniform { min: 2, max: 12 })
            .read_only_fraction(0.3)
            .build();
        let a = Generator::new(&spec, &cat).generate(99);
        let b = Generator::new(&spec, &cat).generate(99);
        assert_eq!(a, b);
        let c = Generator::new(&spec, &cat).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_sorted_and_ids_sequential() {
        let cat = single_site_catalog();
        let spec = WorkloadSpec::builder().txn_count(30).build();
        let txns = Generator::new(&spec, &cat).generate(1);
        for w in txns.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id, TxnId(i as u64));
        }
    }

    #[test]
    fn sizes_respect_distribution() {
        let cat = single_site_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(100)
            .size(SizeDistribution::Uniform { min: 3, max: 9 })
            .build();
        for t in Generator::new(&spec, &cat).generate(5) {
            assert!((3..=9).contains(&(t.size() as u32)), "size {}", t.size());
        }
    }

    #[test]
    fn read_only_fraction_zero_and_one() {
        let cat = single_site_catalog();
        let all_update = WorkloadSpec::builder()
            .txn_count(50)
            .read_only_fraction(0.0)
            .build();
        assert!(Generator::new(&all_update, &cat)
            .generate(3)
            .iter()
            .all(|t| t.kind() == TxnKind::Update));
        let all_read = WorkloadSpec::builder()
            .txn_count(50)
            .read_only_fraction(1.0)
            .build();
        assert!(Generator::new(&all_read, &cat)
            .generate(3)
            .iter()
            .all(|t| t.kind() == TxnKind::ReadOnly));
    }

    #[test]
    fn update_writes_are_primary_at_home_site() {
        let cat = replicated_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(80)
            .size(SizeDistribution::Uniform { min: 2, max: 8 })
            .read_only_fraction(0.0)
            .write_fraction(0.5)
            .build();
        for t in Generator::new(&spec, &cat).generate(11) {
            for &o in &t.write_set {
                assert_eq!(
                    cat.primary_site(o),
                    t.home_site,
                    "write {o} of {} not primary at {}",
                    t.id,
                    t.home_site
                );
            }
        }
    }

    #[test]
    fn update_txns_have_at_least_one_write() {
        let cat = replicated_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(60)
            .size(SizeDistribution::Uniform { min: 1, max: 4 })
            .read_only_fraction(0.0)
            .write_fraction(0.1)
            .build();
        for t in Generator::new(&spec, &cat).generate(2) {
            assert!(!t.write_set.is_empty(), "{} has no writes", t.id);
        }
    }

    #[test]
    fn deadline_proportional_to_size() {
        let cat = single_site_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(20)
            .size(SizeDistribution::Uniform { min: 2, max: 10 })
            .deadline(3.0, SimDuration::from_ticks(50))
            .build();
        for t in Generator::new(&spec, &cat).generate(4) {
            let offset = t.deadline.since(t.arrival);
            assert_eq!(offset.ticks(), (t.size() as u64) * 150);
        }
    }

    #[test]
    fn periodic_instances_released_on_schedule() {
        let cat = replicated_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(1)
            .periodic(PeriodicTask::new(
                SimDuration::from_ticks(500),
                vec![],
                vec![ObjectId(0)], // primary at site 0
                SiteId(0),
                4,
            ))
            .build();
        let txns = Generator::new(&spec, &cat).generate(8);
        let periodic: Vec<&TxnSpec> = txns
            .iter()
            .filter(|t| t.write_set == vec![ObjectId(0)] && t.read_set.is_empty())
            .collect();
        assert_eq!(periodic.len(), 4);
        let arrivals: Vec<u64> = periodic.iter().map(|t| t.arrival.ticks()).collect();
        assert_eq!(arrivals, vec![0, 500, 1000, 1500]);
    }

    #[test]
    fn scan_readers_get_contiguous_ranges() {
        let cat = single_site_catalog();
        let spec = WorkloadSpec::builder()
            .txn_count(60)
            .size(SizeDistribution::Uniform { min: 2, max: 10 })
            .read_only_fraction(1.0)
            .scan_readers(true)
            .build();
        for t in Generator::new(&spec, &cat).generate(17) {
            assert!(t.write_set.is_empty());
            for w in t.read_set.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1, "{} read set not contiguous", t.id);
            }
            assert!(t.read_set.last().unwrap().0 < cat.db_size());
        }
    }

    #[test]
    fn scan_readers_off_matches_legacy_stream() {
        // The flag must not perturb the RNG when off: the explicit
        // `scan_readers(false)` stream equals the default one.
        let cat = single_site_catalog();
        let base = WorkloadSpec::builder()
            .txn_count(40)
            .read_only_fraction(0.4)
            .build();
        let flagged = WorkloadSpec::builder()
            .txn_count(40)
            .read_only_fraction(0.4)
            .scan_readers(false)
            .build();
        assert_eq!(
            Generator::new(&base, &cat).generate(9),
            Generator::new(&flagged, &cat).generate(9)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds database size")]
    fn oversized_transactions_panic() {
        let cat = Catalog::new(4, 1, Placement::SingleSite);
        let spec = WorkloadSpec::builder()
            .size(SizeDistribution::Fixed(10))
            .build();
        Generator::new(&spec, &cat);
    }
}

//! The two event-queue implementations behind [`crate::Scheduler`].
//!
//! [`WheelQueue`] is the production queue: a hierarchical timing wheel
//! tuned for the dense, mostly near-future timestamps a discrete-event
//! simulation produces. [`HeapQueue`] is the original binary-heap queue,
//! retained as the executable reference model: the `heap-queue` cargo
//! feature swaps it back in behind [`crate::Scheduler`], and the
//! equivalence proptests drive both types directly against each other.
//!
//! Both queues expose the same API and the same observable semantics:
//! events fire in `(time, sequence)` order — a total order, since sequence
//! numbers are unique — cancellation is O(1) via generation-tagged slab
//! handles, and tombstones are purged once they outnumber live events so
//! memory stays bounded by the live event count.
//!
//! # Wheel layout
//!
//! The wheel has [`LEVELS`] levels of [`SLOTS_PER_LEVEL`] slots each.
//! Level 0 slots span exactly one tick; level `k` slots span
//! `64^k` ticks, so 11 levels cover the full 64-bit tick range. An event
//! is filed by the highest bit in which its firing time differs from the
//! wheel cursor: near-future events land in level 0 (where every event in
//! a slot shares one exact firing time), far-future events land higher up
//! and cascade down as the cursor approaches them. A per-level occupancy
//! bitmap (one `u64` for 64 slots) finds the next non-empty slot with two
//! bit operations, so an empty stretch of virtual time costs O(levels),
//! not O(ticks).
//!
//! # Determinism
//!
//! The wheel preserves the exact `(time, sequence)` firing order of the
//! heap: a level-0 slot is staged into a dispatch buffer sorted by
//! sequence before any of it fires, and no level-0 slot is staged until
//! every higher-level slot that could hold an equal-or-earlier event has
//! cascaded. Simulation results are byte-identical across the two queues.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::event::{EventId, QueueKey};
use crate::time::SimTime;

/// Counters describing the work a queue has performed, for
/// events-per-second throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled so far.
    pub scheduled: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Events executed (delivered to the model).
    pub executed: u64,
    /// Tombstone keys removed by bulk purges (excluding those skipped
    /// one at a time during pops).
    pub purged: u64,
    /// Events currently pending.
    pub pending: usize,
}

/// One slab slot: the payload of a live event, or vacant. The generation
/// counts how many times the slot has been vacated; handles and queue keys
/// carry the generation they were issued under, so stale ones are
/// recognised in O(1).
#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// The payload slab shared by both queue implementations: slot-reusing,
/// generation-tagged storage so queue keys are three words and
/// cancellation never touches the key structure.
struct Slab<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Occupied slot count == live (pending) events.
    live: usize,
}

impl<E> Slab<E> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `payload` in a free slot, returning the handle.
    fn insert(&mut self, payload: E) -> EventId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    payload: None,
                });
                slot
            }
        };
        let cell = &mut self.slots[slot as usize];
        debug_assert!(
            cell.payload.is_none(),
            "free list returned an occupied slot"
        );
        cell.payload = Some(payload);
        self.live += 1;
        EventId::pack(slot, cell.generation)
    }

    /// Returns `true` if `id` addresses a live (pending) event.
    fn is_live(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot() as usize)
            .is_some_and(|cell| cell.generation == id.generation() && cell.payload.is_some())
    }

    /// Reclaims the slot behind `id` if it is live, bumping its generation
    /// so outstanding handles and queue keys for the old occupant become
    /// stale. Returns `None` for a stale handle.
    fn try_vacate(&mut self, id: EventId) -> Option<E> {
        let cell = self.slots.get_mut(id.slot() as usize)?;
        if cell.generation != id.generation() {
            return None;
        }
        let payload = cell.payload.take()?;
        cell.generation = cell.generation.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        Some(payload)
    }
}

impl<E> fmt::Debug for Slab<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("slots", &self.slots.len())
            .field("live", &self.live)
            .finish()
    }
}

/// Bookkeeping counters shared by both queue implementations.
#[derive(Debug, Default)]
struct Counters {
    next_seq: u64,
    executed: u64,
    scheduled: u64,
    cancelled: u64,
    purged: u64,
}

/// Tombstone purge policy shared by both queues: rebuild once tombstones
/// outnumber live keys and are worth a linear pass.
fn purge_due(stale_keys: usize, live: usize) -> bool {
    stale_keys > 64 && stale_keys > live
}

// ---------------------------------------------------------------------------
// Binary-heap reference queue
// ---------------------------------------------------------------------------

/// The original binary-heap event queue, retained as the executable
/// reference model for [`WheelQueue`].
///
/// Scheduling pushes a three-word [`QueueKey`] onto a min-heap;
/// cancellation invalidates the slab slot and leaves the key behind as a
/// tombstone; popping skips tombstones by comparing the key's generation
/// against the slot's. The `heap-queue` cargo feature rebuilds
/// [`crate::Scheduler`] (and therefore every simulation) on this queue.
pub struct HeapQueue<E> {
    clock: SimTime,
    queue: BinaryHeap<Reverse<QueueKey>>,
    slab: Slab<E>,
    /// Keys in `queue` whose slot generation no longer matches (cancelled
    /// events not yet skipped or purged).
    stale_keys: usize,
    counters: Counters,
}

impl<E> fmt::Debug for HeapQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapQueue")
            .field("clock", &self.clock)
            .field("pending", &self.slab.live)
            .field("tombstones", &self.stale_keys)
            .field("executed", &self.counters.executed)
            .finish()
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        HeapQueue {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            slab: Slab::new(),
            stale_keys: 0,
            counters: Counters::default(),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules `event` to fire at absolute time `at`; same-time events
    /// fire in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; the clock is monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.clock,
            "cannot schedule an event in the past ({at} < {})",
            self.clock
        );
        let seq = self.counters.next_seq;
        self.counters.next_seq += 1;
        let id = self.slab.insert(event);
        self.counters.scheduled += 1;
        self.queue.push(Reverse(QueueKey { at, seq, id }));
        debug_assert_eq!(self.queue.len(), self.slab.live + self.stale_keys);
        id
    }

    /// Cancels a previously scheduled event in O(1). Returns `true` if the
    /// event had not yet fired (and now never will).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.slab.try_vacate(id).is_none() {
            return false;
        }
        self.stale_keys += 1;
        self.counters.cancelled += 1;
        debug_assert_eq!(self.queue.len(), self.slab.live + self.stale_keys);
        if purge_due(self.stale_keys, self.slab.live) {
            self.purge_tombstones();
        }
        true
    }

    /// Returns `true` if `id` is scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slab.is_live(id)
    }

    /// Rebuilds the heap without tombstone keys.
    fn purge_tombstones(&mut self) {
        let keys = std::mem::take(&mut self.queue).into_vec();
        let mut kept = Vec::with_capacity(self.slab.live);
        for Reverse(key) in keys {
            if self.slab.is_live(key.id) {
                kept.push(Reverse(key));
            }
        }
        self.counters.purged += self.stale_keys as u64;
        self.stale_keys = 0;
        self.queue = BinaryHeap::from(kept);
        debug_assert_eq!(self.queue.len(), self.slab.live);
    }

    /// Firing time of the next live event, discarding any tombstone keys
    /// sitting on top of the heap (dropping a stale key is unobservable, so
    /// this may be called from `&mut self` contexts freely).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse(key)) = self.queue.peek() {
            if self.slab.is_live(key.id) {
                return Some(key.at);
            }
            self.queue.pop();
            self.stale_keys -= 1;
        }
        None
    }

    /// Pops the next live event, advancing the clock to its firing time.
    pub fn pop_next(&mut self) -> Option<E> {
        while let Some(Reverse(key)) = self.queue.pop() {
            let Some(payload) = self.slab.try_vacate(key.id) else {
                self.stale_keys -= 1;
                continue;
            };
            debug_assert!(key.at >= self.clock, "event queue went backwards");
            self.clock = key.at;
            self.counters.executed += 1;
            return Some(payload);
        }
        // The queue drained: every slot must be vacant and every tombstone
        // accounted for, or the slab and heap have diverged.
        debug_assert_eq!(self.slab.live, 0, "queue drained with occupied slots");
        debug_assert_eq!(
            self.stale_keys, 0,
            "queue drained with tombstones unaccounted"
        );
        None
    }

    /// Number of events executed so far.
    pub fn executed_count(&self) -> u64 {
        self.counters.executed
    }

    /// Number of events currently pending (excluding tombstones not yet
    /// purged from the queue).
    pub fn pending_count(&self) -> usize {
        self.slab.live
    }

    /// Number of keys the queue currently retains, including tombstones —
    /// for tests and diagnostics of the purge policy.
    pub fn key_count(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot of the queue's throughput counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.counters.scheduled,
            cancelled: self.counters.cancelled,
            executed: self.counters.executed,
            purged: self.counters.purged,
            pending: self.slab.live,
        }
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel
// ---------------------------------------------------------------------------

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level; one `u64` occupancy bitmap covers a level.
const SLOTS_PER_LEVEL: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = (SLOTS_PER_LEVEL - 1) as u64;
/// Levels needed so `64^LEVELS` covers every 64-bit tick value.
const LEVELS: usize = 11;

/// The production event queue: a hierarchical timing wheel.
///
/// See the [module docs](self) for the layout and the determinism
/// argument. The API and observable behaviour are identical to
/// [`HeapQueue`]; the equivalence proptest in
/// `tests/proptest_scheduler_equiv.rs` drives both against each other.
pub struct WheelQueue<E> {
    /// Observable virtual time: the firing time of the last popped event.
    clock: SimTime,
    /// Wheel position in ticks. Invariant: `clock <= cursor` and every
    /// event filed in the wheel fires at `>= cursor`; events scheduled
    /// behind the cursor (possible only after a horizon-bounded peek
    /// cascaded the wheel forward) go to `early` instead.
    cursor: u64,
    slab: Slab<E>,
    /// `LEVELS * SLOTS_PER_LEVEL` slot buckets, level-major.
    slots: Vec<Vec<QueueKey>>,
    /// One bit per slot, set iff the bucket is non-empty.
    occupancy: [u64; LEVELS],
    /// Events scheduled behind the cursor, sorted descending by
    /// `(time, seq)` so the minimum pops from the back. These fire before
    /// anything in the wheel (they are strictly earlier by the cursor
    /// invariant) and the vector is almost always empty.
    early: Vec<QueueKey>,
    /// The level-0 slot currently being fired: all keys share
    /// `dispatch_at`, sorted descending by `seq` so the minimum pops from
    /// the back. Same-instant events scheduled while draining land in the
    /// (now empty) origin slot and are staged after this batch, which is
    /// exactly `(time, seq)` order because their sequences are larger.
    dispatch: Vec<QueueKey>,
    dispatch_at: SimTime,
    /// Keys filed anywhere above whose slab slot no longer matches
    /// (cancelled events not yet skipped or purged).
    stale_keys: usize,
    counters: Counters,
}

impl<E> fmt::Debug for WheelQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WheelQueue")
            .field("clock", &self.clock)
            .field("cursor", &self.cursor)
            .field("pending", &self.slab.live)
            .field("tombstones", &self.stale_keys)
            .field("executed", &self.counters.executed)
            .finish()
    }
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS_PER_LEVEL, Vec::new);
        WheelQueue {
            clock: SimTime::ZERO,
            cursor: 0,
            slab: Slab::new(),
            slots,
            occupancy: [0; LEVELS],
            early: Vec::new(),
            dispatch: Vec::new(),
            dispatch_at: SimTime::ZERO,
            stale_keys: 0,
            counters: Counters::default(),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules `event` to fire at absolute time `at`; same-time events
    /// fire in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; the clock is monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.clock,
            "cannot schedule an event in the past ({at} < {})",
            self.clock
        );
        let seq = self.counters.next_seq;
        self.counters.next_seq += 1;
        let id = self.slab.insert(event);
        self.counters.scheduled += 1;
        self.push_key(QueueKey { at, seq, id });
        id
    }

    /// Files `key` into the wheel level/slot addressed by its firing time
    /// relative to the cursor, or into `early` if it is behind the cursor.
    fn push_key(&mut self, key: QueueKey) {
        let t = key.at.ticks();
        if t < self.cursor {
            // Only reachable when a horizon-bounded peek cascaded the
            // wheel past `t` and the caller then scheduled between the
            // horizon and the next pending event. Such an event is
            // strictly earlier than everything in the wheel.
            let i = self
                .early
                .partition_point(|k| (k.at, k.seq) > (key.at, key.seq));
            self.early.insert(i, key);
            return;
        }
        let masked = t ^ self.cursor;
        let level = if masked == 0 {
            0
        } else {
            ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((t >> (LEVEL_BITS as usize * level)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS_PER_LEVEL + slot].push(key);
        self.occupancy[level] |= 1 << slot;
    }

    /// Cancels a previously scheduled event in O(1). Returns `true` if the
    /// event had not yet fired (and now never will).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.slab.try_vacate(id).is_none() {
            return false;
        }
        self.stale_keys += 1;
        self.counters.cancelled += 1;
        if purge_due(self.stale_keys, self.slab.live) {
            self.purge_tombstones();
        }
        true
    }

    /// Returns `true` if `id` is scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slab.is_live(id)
    }

    /// Sweeps every bucket, dropping tombstone keys, so memory stays
    /// bounded by the live event count on cancel-heavy workloads.
    fn purge_tombstones(&mut self) {
        let slab = &self.slab;
        for level in 0..LEVELS {
            let mut occ = self.occupancy[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let bucket = &mut self.slots[level * SLOTS_PER_LEVEL + slot];
                bucket.retain(|k| slab.is_live(k.id));
                if bucket.is_empty() {
                    self.occupancy[level] &= !(1 << slot);
                }
            }
        }
        self.early.retain(|k| slab.is_live(k.id));
        self.dispatch.retain(|k| slab.is_live(k.id));
        self.counters.purged += self.stale_keys as u64;
        self.stale_keys = 0;
    }

    /// The earliest possibly-occupied `(level, slot, slot base time)`
    /// across all levels. The base is exact for level 0 (level-0 slots
    /// span one tick) and a lower bound for higher levels; ties prefer the
    /// higher level so every slot that could hold an equal-or-earlier
    /// event cascades before a level-0 slot is staged.
    fn wheel_candidate(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..LEVELS {
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let pos = ((self.cursor >> shift) & SLOT_MASK) as u32;
            // Distance (in slots, wrapping) from the cursor's slot to the
            // next occupied one; a wrap means the slot is in the next
            // higher-level epoch.
            let dist = occ.rotate_right(pos).trailing_zeros();
            let idx = ((pos + dist) as u64 & SLOT_MASK) as usize;
            let wrapped = (pos + dist) as usize >= SLOTS_PER_LEVEL;
            let epoch_shift = shift + LEVEL_BITS;
            let epoch = if epoch_shift >= 64 {
                0
            } else {
                self.cursor >> epoch_shift
            };
            let base = ((epoch + wrapped as u64) << LEVEL_BITS | idx as u64) << shift;
            let better = match best {
                Some((b, l, _)) => base < b || (base == b && level > l),
                None => true,
            };
            if better {
                best = Some((base, level, idx));
            }
        }
        best.map(|(base, level, idx)| (level, idx, base))
    }

    /// Drains a level `>= 1` slot, refiling its live keys relative to the
    /// slot's base time. Every key lands at a strictly lower level, so
    /// repeated cascading terminates.
    fn cascade(&mut self, level: usize, slot: usize, base: u64) {
        debug_assert!(level >= 1);
        debug_assert!(base >= self.cursor);
        self.occupancy[level] &= !(1 << slot);
        let mut keys = std::mem::take(&mut self.slots[level * SLOTS_PER_LEVEL + slot]);
        self.cursor = base;
        for &key in &keys {
            if self.slab.is_live(key.id) {
                self.push_key(key);
            } else {
                self.stale_keys -= 1;
            }
        }
        // Hand the emptied bucket back so its capacity is reused; the
        // cascade refiled only into strictly lower levels, never here.
        keys.clear();
        self.slots[level * SLOTS_PER_LEVEL + slot] = keys;
    }

    /// Stages a ready level-0 slot into the dispatch buffer: all its keys
    /// share the firing time `base`, sorted by sequence so the buffer pops
    /// in deterministic order.
    fn stage_dispatch(&mut self, slot: usize, base: u64) {
        debug_assert!(self.dispatch.is_empty());
        debug_assert!(base >= self.cursor);
        self.occupancy[0] &= !(1 << slot);
        self.cursor = base;
        self.dispatch_at = SimTime::from_ticks(base);
        // Swap buffers so both allocations survive: the bucket's keys
        // become the dispatch batch, the spent dispatch vector becomes the
        // (empty) bucket.
        let mut keys = std::mem::replace(&mut self.slots[slot], std::mem::take(&mut self.dispatch));
        let slab = &self.slab;
        let before = keys.len();
        keys.retain(|k| slab.is_live(k.id));
        self.stale_keys -= before - keys.len();
        keys.sort_unstable_by_key(|k| std::cmp::Reverse(k.seq));
        self.dispatch = keys;
    }

    /// Advances the wheel until the next live event is exactly located:
    /// either in `early` or at the front of the dispatch buffer. Returns
    /// `false` when the queue is empty.
    fn locate_next(&mut self) -> bool {
        loop {
            while let Some(&key) = self.early.last() {
                if self.slab.is_live(key.id) {
                    return true;
                }
                self.early.pop();
                self.stale_keys -= 1;
            }
            while let Some(&key) = self.dispatch.last() {
                if self.slab.is_live(key.id) {
                    return true;
                }
                self.dispatch.pop();
                self.stale_keys -= 1;
            }
            match self.wheel_candidate() {
                Some((0, slot, base)) => self.stage_dispatch(slot, base),
                Some((level, slot, base)) => self.cascade(level, slot, base),
                None => return false,
            }
        }
    }

    /// Firing time of the next live event. May cascade wheel levels and
    /// drop tombstones, all of which is unobservable.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        if !self.locate_next() {
            return None;
        }
        match self.early.last() {
            Some(key) => Some(key.at),
            None => Some(self.dispatch_at),
        }
    }

    /// Pops the next live event, advancing the clock to its firing time.
    pub fn pop_next(&mut self) -> Option<E> {
        if !self.locate_next() {
            debug_assert_eq!(self.slab.live, 0, "queue drained with occupied slots");
            debug_assert_eq!(
                self.stale_keys, 0,
                "queue drained with tombstones unaccounted"
            );
            return None;
        }
        let key = match self.early.pop() {
            Some(key) => key,
            None => self.dispatch.pop().expect("locate_next found an event"),
        };
        let payload = self
            .slab
            .try_vacate(key.id)
            .expect("locate_next returned a stale key");
        debug_assert!(key.at >= self.clock, "event queue went backwards");
        self.clock = key.at;
        self.counters.executed += 1;
        Some(payload)
    }

    /// Number of events executed so far.
    pub fn executed_count(&self) -> u64 {
        self.counters.executed
    }

    /// Number of events currently pending (excluding tombstones not yet
    /// purged from the wheel).
    pub fn pending_count(&self) -> usize {
        self.slab.live
    }

    /// Number of keys the queue currently retains, including tombstones —
    /// for tests and diagnostics of the purge policy.
    pub fn key_count(&self) -> usize {
        self.early.len() + self.dispatch.len() + self.slots.iter().map(Vec::len).sum::<usize>()
    }

    /// Snapshot of the queue's throughput counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.counters.scheduled,
            cancelled: self.counters.cancelled,
            executed: self.counters.executed,
            purged: self.counters.purged,
            pending: self.slab.live,
        }
    }
}

//! Scheduling priorities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A scheduling priority; greater values are more urgent.
///
/// The paper assigns the highest priority to the transaction with the
/// earliest deadline; [`Priority::earliest_deadline_first`] implements that
/// mapping. Ties between equal priorities are broken by the consumer
/// (typically by arrival order), never by the priority value itself.
///
/// # Example
///
/// ```
/// use starlite::{Priority, SimTime};
/// let urgent = Priority::earliest_deadline_first(SimTime::from_ticks(100));
/// let relaxed = Priority::earliest_deadline_first(SimTime::from_ticks(900));
/// assert!(urgent > relaxed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(i64);

impl Priority {
    /// The least urgent priority.
    pub const MIN: Priority = Priority(i64::MIN);

    /// The most urgent priority.
    pub const MAX: Priority = Priority(i64::MAX);

    /// Creates a priority from a raw level; greater is more urgent.
    pub const fn new(level: i64) -> Self {
        Priority(level)
    }

    /// Returns the raw level.
    pub const fn level(self) -> i64 {
        self.0
    }

    /// Maps a deadline to a priority so that earlier deadlines are more
    /// urgent (the paper's priority assignment rule).
    pub fn earliest_deadline_first(deadline: SimTime) -> Self {
        debug_assert!(deadline.ticks() <= i64::MAX as u64, "deadline out of range");
        Priority(-(deadline.ticks() as i64))
    }

    /// Returns the more urgent of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Priority) -> Priority {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::MIN
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_deadline_is_more_urgent() {
        let early = Priority::earliest_deadline_first(SimTime::from_ticks(10));
        let late = Priority::earliest_deadline_first(SimTime::from_ticks(20));
        assert!(early > late);
        assert_eq!(early.max(late), early);
    }

    #[test]
    fn extremes_bracket_everything() {
        let p = Priority::new(42);
        assert!(Priority::MIN < p);
        assert!(p < Priority::MAX);
    }

    #[test]
    fn default_is_least_urgent() {
        assert_eq!(Priority::default(), Priority::MIN);
    }
}

//! Seeded random processes for workload generation.
//!
//! All randomness in a simulation flows through a [`RandomSource`] seeded
//! from the run configuration, which makes each run a pure function of its
//! seed. Independent sub-streams (one per site, one per generator) are
//! obtained with [`RandomSource::split`] so adding a consumer never perturbs
//! the draws seen by another.

use std::fmt;

use crate::time::SimDuration;

/// xoshiro256++ with SplitMix64 seeding — the same construction
/// `rand::rngs::SmallRng::seed_from_u64` uses on 64-bit targets, inlined so
/// the kernel has no external dependency. Deterministic across platforms.
#[derive(Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the four state words; the
        // all-zero state (unreachable from SplitMix64 output) is excluded.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random source.
///
/// # Example
///
/// ```
/// use starlite::RandomSource;
/// let mut a = RandomSource::new(42);
/// let mut b = RandomSource::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct RandomSource {
    rng: Xoshiro256PlusPlus,
    seed: u64,
}

impl fmt::Debug for RandomSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomSource")
            .field("seed", &self.seed)
            .finish()
    }
}

impl RandomSource {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        RandomSource {
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this source was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream; deterministic in the parent's
    /// current state.
    pub fn split(&mut self) -> RandomSource {
        // Mix so that consecutive splits land far apart in seed space.
        let child = self.rng.next_u64() ^ 0x9E37_79B9_7F4A_7C15;
        RandomSource::new(child)
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, as rand's `Standard` distribution does.
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty uniform range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            return self.rng.next_u64();
        }
        // Lemire's widening-multiply mapping with rejection of the biased
        // low zone, so every value in the span is exactly equally likely.
        let threshold = span.wrapping_neg() % span;
        loop {
            let wide = self.rng.next_u64() as u128 * span as u128;
            if (wide as u64) >= threshold {
                return lo + ((wide >> 64) as u64);
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.unit() < p
    }

    /// Exponentially distributed duration with the given mean (inverse
    /// transform sampling); used for the paper's exponentially distributed
    /// interarrival times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        assert!(!mean.is_zero(), "exponential mean must be positive");
        // u ∈ (0, 1]; -ln(u) is Exp(1).
        let u = 1.0 - self.unit();
        let ticks = (-(u.ln()) * mean.ticks() as f64).round();
        // Clamp to at least one tick so arrivals keep a total order that
        // does not depend on float rounding of near-zero gaps.
        SimDuration::from_ticks((ticks as u64).max(1))
    }

    /// Samples `n` distinct values uniformly from `[0, universe)` using
    /// Floyd's algorithm; used to draw a transaction's data-object set
    /// "uniformly from the database".
    ///
    /// The result is in sampling order (not sorted).
    ///
    /// # Panics
    ///
    /// Panics if `n > universe`.
    pub fn sample_distinct(&mut self, n: usize, universe: u64) -> Vec<u64> {
        assert!(
            (n as u64) <= universe,
            "cannot sample {n} distinct values from a universe of {universe}"
        );
        let mut chosen: Vec<u64> = Vec::with_capacity(n);
        // Floyd's algorithm: for j in universe-n..universe, pick t in [0, j];
        // insert t unless already chosen, else insert j.
        for j in (universe - n as u64)..universe {
            let t = self.uniform_inclusive(0, j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        // Shuffle so access order is unbiased.
        self.shuffle(&mut chosen);
        chosen
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.is_empty() {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_inclusive(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Picks one element of `items` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        let idx = self.uniform_inclusive(0, items.len() as u64 - 1) as usize;
        &items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RandomSource::new(7);
        let mut b = RandomSource::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let mut a = RandomSource::new(7);
        let mut b = RandomSource::new(7);
        let mut ca = a.split();
        let mut cb = b.split();
        assert_eq!(ca.next_u64(), cb.next_u64());
        // Parent and child produce different streams.
        assert_ne!(a.next_u64(), ca.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = RandomSource::new(11);
        let mean = SimDuration::from_ticks(1_000);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.exponential(mean).ticks()).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - 1_000.0).abs() < 30.0,
            "observed mean {observed} too far from 1000"
        );
    }

    #[test]
    fn exponential_is_at_least_one_tick() {
        let mut r = RandomSource::new(3);
        for _ in 0..1_000 {
            assert!(r.exponential(SimDuration::from_ticks(2)).ticks() >= 1);
        }
    }

    #[test]
    fn sample_distinct_yields_distinct_in_range() {
        let mut r = RandomSource::new(5);
        for _ in 0..100 {
            let s = r.sample_distinct(10, 30);
            assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {s:?}");
            assert!(s.iter().all(|&v| v < 30));
        }
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut r = RandomSource::new(5);
        let mut s = r.sample_distinct(8, 8);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut r = RandomSource::new(17);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            for v in r.sample_distinct(3, 10) {
                counts[v as usize] += 1;
            }
        }
        // Each of the 10 values should appear ~3000 times.
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (2_700..=3_300).contains(&c),
                "value {v} count {c} outside tolerance"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RandomSource::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "distinct values")]
    fn oversized_sample_panics() {
        let mut r = RandomSource::new(1);
        r.sample_distinct(5, 4);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = RandomSource::new(2);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! A simulated CPU with preemptive priority or FCFS scheduling.
//!
//! The CPU executes *bursts*: finite slices of work submitted on behalf of a
//! task (in the prototyping environment, one burst is the processing of one
//! data object by one transaction). The model is pull-free: every state
//! change returns the burst that must now be timed, and the caller (the
//! simulation [`Model`](crate::Model)) schedules a completion event at
//! [`StartedBurst::finish_at`]. Bursts carry a [`CpuToken`]; if a burst is
//! preempted, its completion event becomes *stale* and
//! [`Cpu::complete`] reports that, so the caller simply ignores it.
//!
//! Priority changes while a task is on the CPU or in the ready queue —
//! the mechanism priority inheritance relies on — are supported through
//! [`Cpu::set_priority`] and may themselves trigger preemption.
//!
//! # Ready-queue layout
//!
//! The ready queue is a binary heap of `(priority, Reverse(seq))` keys over
//! a slab of entries, so picking the next task is O(log n) instead of a
//! linear scan, while FIFO order within equal priorities is preserved (the
//! seniority sequence number is assigned at first submission and survives
//! preemptions). Membership tests and priority updates go through an
//! index keyed by task id; a priority update invalidates the task's old
//! heap key by bumping its slab slot's generation and pushes a fresh key,
//! and stale keys are skipped when popped. Under FCFS every key carries
//! the same priority, so the heap degenerates to pure arrival order.
//!
//! # Example
//!
//! ```
//! use starlite::{Cpu, CpuPolicy, Priority, SimTime, SimDuration};
//!
//! let mut cpu: Cpu<u32> = Cpu::new(CpuPolicy::PreemptivePriority);
//! let now = SimTime::ZERO;
//! let burst = cpu
//!     .submit(7, Priority::new(1), SimDuration::from_ticks(100), now)
//!     .expect("idle CPU starts immediately");
//! assert_eq!(burst.finish_at, SimTime::from_ticks(100));
//!
//! // A more urgent task arrives mid-burst and preempts.
//! let t = SimTime::from_ticks(40);
//! let urgent = cpu.submit(9, Priority::new(5), SimDuration::from_ticks(10), t);
//! assert_eq!(urgent.unwrap().task, 9);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::hash::Hash;

use crate::hashing::FxHashMap;
use crate::priority::Priority;
use crate::time::{SimDuration, SimTime};

/// The dispatching discipline of a [`Cpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuPolicy {
    /// Highest effective priority runs; a more urgent arrival preempts the
    /// running burst (the paper's priority-driven scheduling).
    PreemptivePriority,
    /// Bursts run to completion in arrival order, ignoring priorities (the
    /// paper's two-phase locking *without* priority mode).
    Fcfs,
}

/// Identifies one started burst; completion events carry it so stale
/// completions (for preempted bursts) can be recognised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuToken(u64);

impl CpuToken {
    /// Returns the raw token value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// A burst that just started executing; the caller must schedule a
/// completion event at [`StartedBurst::finish_at`] carrying
/// [`StartedBurst::token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedBurst<T> {
    /// The task whose burst started.
    pub task: T,
    /// Token to present to [`Cpu::complete`] when the timer fires.
    pub token: CpuToken,
    /// Absolute time at which the burst finishes if not preempted.
    pub finish_at: SimTime,
}

/// Result of presenting a completion token to [`Cpu::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion<T> {
    /// The token belonged to a burst that was preempted or removed; ignore.
    Stale,
    /// The burst ran to completion; `next` is the burst dispatched in its
    /// place, if the ready queue was non-empty.
    Finished {
        /// Task whose burst completed.
        task: T,
        /// Next burst started, to be timed by the caller.
        next: Option<StartedBurst<T>>,
    },
}

/// What a tracing-enabled CPU journals (see [`Cpu::set_tracing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuJournalKind {
    /// A burst started executing (initial start or resumption).
    Dispatched,
    /// The running burst was moved back to the ready queue.
    Preempted,
}

/// One entry of the CPU's tracing journal: scheduling decisions stamped
/// with the instant they happened, drained by the simulation model via
/// [`Cpu::drain_journal`] and converted into its own event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuJournalEntry<T> {
    /// When the decision happened.
    pub at: SimTime,
    /// The task dispatched or preempted.
    pub task: T,
    /// Which decision it was.
    pub kind: CpuJournalKind,
}

/// Result of [`Cpu::remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Removed<T> {
    /// The task was running; `next` is the burst dispatched in its place.
    WasRunning {
        /// Next burst started, to be timed by the caller.
        next: Option<StartedBurst<T>>,
    },
    /// The task was waiting in the ready queue.
    WasReady,
    /// The task was not on this CPU.
    NotPresent,
}

#[derive(Debug)]
struct Running<T> {
    task: T,
    priority: Priority,
    token: u64,
    seq: u64,
    started: SimTime,
    /// Work remaining when the burst (re)started.
    remaining: SimDuration,
}

#[derive(Debug)]
struct ReadyEntry<T> {
    task: T,
    priority: Priority,
    remaining: SimDuration,
    /// Dispatch seniority: assigned at first submission, preserved across
    /// preemptions so equal-priority tasks are served FIFO.
    seq: u64,
}

/// One ready-slab slot. The generation counts invalidations (vacates and
/// priority changes); heap keys carry the generation they were pushed
/// under, so a stale key is recognised in O(1) when popped.
#[derive(Debug)]
struct ReadySlot<T> {
    generation: u32,
    entry: Option<ReadyEntry<T>>,
}

/// A dispatch-order key: most urgent priority first, then earliest
/// seniority. Under FCFS all keys carry [`Priority::MIN`], so ordering
/// falls through to pure seniority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadyKey {
    priority: Priority,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority wins, then the *smaller* sequence
        // number (FIFO within a priority level).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single simulated processor.
///
/// See the [module documentation](self) for the driving pattern.
pub struct Cpu<T> {
    policy: CpuPolicy,
    running: Option<Running<T>>,
    heap: BinaryHeap<ReadyKey>,
    slots: Vec<ReadySlot<T>>,
    free: Vec<u32>,
    index: FxHashMap<T, u32>,
    ready: usize,
    next_token: u64,
    next_seq: u64,
    busy: SimDuration,
    dispatches: u64,
    preemptions: u64,
    trace: bool,
    journal: Vec<CpuJournalEntry<T>>,
}

impl<T> fmt::Debug for Cpu<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("policy", &self.policy)
            .field("busy", &self.running.is_some())
            .field("ready_len", &self.ready)
            .field("dispatches", &self.dispatches)
            .field("preemptions", &self.preemptions)
            .finish()
    }
}

impl<T: Copy + Eq + Hash + fmt::Debug> Cpu<T> {
    /// Creates an idle CPU with the given dispatching policy.
    pub fn new(policy: CpuPolicy) -> Self {
        Cpu {
            policy,
            running: None,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
            ready: 0,
            next_token: 0,
            next_seq: 0,
            busy: SimDuration::ZERO,
            dispatches: 0,
            preemptions: 0,
            trace: false,
            journal: Vec::new(),
        }
    }

    /// Turns journalling of scheduling decisions on or off. Off by default;
    /// with tracing off the journal stays empty and dispatch paths pay one
    /// predictable branch.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    /// Moves all journalled entries into `out` (appending), oldest first.
    /// A no-op when tracing is off.
    pub fn drain_journal(&mut self, out: &mut Vec<CpuJournalEntry<T>>) {
        out.append(&mut self.journal);
    }

    #[inline]
    fn journal(&mut self, at: SimTime, task: T, kind: CpuJournalKind) {
        if self.trace {
            self.journal.push(CpuJournalEntry { at, task, kind });
        }
    }

    /// The heap rank of a ready entry: its priority under the preemptive
    /// policy, a constant under FCFS (so dispatch order ignores it).
    fn rank(&self, priority: Priority) -> Priority {
        match self.policy {
            CpuPolicy::PreemptivePriority => priority,
            CpuPolicy::Fcfs => Priority::MIN,
        }
    }

    /// Parks an entry in the ready slab and pushes its dispatch key.
    fn enqueue_ready(&mut self, entry: ReadyEntry<T>) {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("ready slab exceeds u32 slots");
                self.slots.push(ReadySlot {
                    generation: 0,
                    entry: None,
                });
                slot
            }
        };
        let key = ReadyKey {
            priority: self.rank(entry.priority),
            seq: entry.seq,
            slot,
            generation: self.slots[slot as usize].generation,
        };
        self.index.insert(entry.task, slot);
        let cell = &mut self.slots[slot as usize];
        debug_assert!(cell.entry.is_none(), "free list returned an occupied slot");
        cell.entry = Some(entry);
        self.heap.push(key);
        self.ready += 1;
    }

    /// Pops the most urgent valid ready entry, discarding stale keys.
    fn pop_best(&mut self) -> Option<ReadyEntry<T>> {
        while let Some(key) = self.heap.pop() {
            let cell = &mut self.slots[key.slot as usize];
            if cell.generation != key.generation {
                continue; // invalidated by a priority change or removal
            }
            let entry = cell.entry.take().expect("valid key for an empty slot");
            cell.generation = cell.generation.wrapping_add(1);
            self.free.push(key.slot);
            self.index.remove(&entry.task);
            self.ready -= 1;
            return Some(entry);
        }
        None
    }

    /// Drops a ready entry by slot, invalidating its outstanding key.
    fn vacate_ready(&mut self, slot: u32) -> ReadyEntry<T> {
        let cell = &mut self.slots[slot as usize];
        let entry = cell.entry.take().expect("vacating an empty ready slot");
        cell.generation = cell.generation.wrapping_add(1);
        self.free.push(slot);
        self.ready -= 1;
        entry
    }

    /// The most urgent ready priority, if any (preemptive policy only).
    fn best_ready_priority(&mut self) -> Option<Priority> {
        while let Some(key) = self.heap.peek() {
            let cell = &self.slots[key.slot as usize];
            if cell.generation == key.generation {
                return Some(key.priority);
            }
            self.heap.pop(); // discard the stale key and keep looking
        }
        None
    }

    /// Submits `work` ticks of processing for `task` at effective priority
    /// `priority`.
    ///
    /// Returns the burst to time if the task starts running immediately —
    /// either because the CPU was idle or because the submission preempted a
    /// less urgent burst (preemptive policy only). Returns `None` when the
    /// task was queued.
    ///
    /// # Panics
    ///
    /// Panics if `task` is already on this CPU (running or ready), or if
    /// `work` is zero.
    pub fn submit(
        &mut self,
        task: T,
        priority: Priority,
        work: SimDuration,
        now: SimTime,
    ) -> Option<StartedBurst<T>> {
        assert!(!work.is_zero(), "cannot submit a zero-length burst");
        assert!(
            !self.contains(task),
            "task {task:?} submitted while already on the CPU"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.running {
            None => Some(self.start(task, priority, work, seq, now)),
            Some(run) => {
                if self.policy == CpuPolicy::PreemptivePriority && priority > run.priority {
                    self.preempt_running(now);
                    Some(self.start(task, priority, work, seq, now))
                } else {
                    self.enqueue_ready(ReadyEntry {
                        task,
                        priority,
                        remaining: work,
                        seq,
                    });
                    None
                }
            }
        }
    }

    /// Reports that a completion timer fired for `token`.
    ///
    /// Stale tokens (preempted or removed bursts) yield
    /// [`Completion::Stale`]; live tokens finish the running burst and
    /// dispatch the next ready task, if any.
    pub fn complete(&mut self, token: CpuToken, now: SimTime) -> Completion<T> {
        let is_current = self
            .running
            .as_ref()
            .is_some_and(|run| run.token == token.0);
        if !is_current {
            return Completion::Stale;
        }
        let run = self.running.take().expect("checked above");
        debug_assert_eq!(
            now,
            run.started + run.remaining,
            "completion fired at the wrong time"
        );
        self.busy += run.remaining;
        let task = run.task;
        let next = self.dispatch_next(now);
        Completion::Finished { task, next }
    }

    /// Updates `task`'s effective priority (e.g. on priority inheritance).
    ///
    /// With the preemptive policy this may change who runs: raising a ready
    /// task above the running one preempts; lowering the running task below
    /// a ready one re-dispatches. Any newly started burst is returned so the
    /// caller can time it. Unknown tasks (e.g. doing I/O or blocked on a
    /// lock) are ignored: their new priority takes effect at next submit.
    pub fn set_priority(
        &mut self,
        task: T,
        priority: Priority,
        now: SimTime,
    ) -> Option<StartedBurst<T>> {
        if self.policy == CpuPolicy::Fcfs {
            // Dispatch order ignores priorities entirely; just record it.
            if let Some(run) = &mut self.running {
                if run.task == task {
                    run.priority = priority;
                    return None;
                }
            }
            if let Some(&slot) = self.index.get(&task) {
                let entry = self.slots[slot as usize]
                    .entry
                    .as_mut()
                    .expect("indexed ready slot is occupied");
                entry.priority = priority;
                // The heap key stays valid: FCFS keys rank by seniority
                // only, so no re-keying is needed.
            }
            return None;
        }
        let runs_task = self.running.as_ref().is_some_and(|run| run.task == task);
        if runs_task {
            self.running.as_mut().expect("checked above").priority = priority;
            // The running task may now be less urgent than a ready one.
            let must_yield = self
                .best_ready_priority()
                .is_some_and(|best| best > priority);
            if must_yield {
                self.preempt_running(now);
                return self.dispatch_next(now);
            }
            return None;
        }
        if let Some(&slot) = self.index.get(&task) {
            // Invalidate the old key and push a fresh one at the new
            // priority; the seniority sequence number is preserved.
            let cell = &mut self.slots[slot as usize];
            cell.generation = cell.generation.wrapping_add(1);
            let entry = cell.entry.as_mut().expect("indexed ready slot is occupied");
            entry.priority = priority;
            let key = ReadyKey {
                priority,
                seq: entry.seq,
                slot,
                generation: cell.generation,
            };
            self.heap.push(key);
            // CPU idle with a non-empty ready queue cannot happen: we
            // always dispatch eagerly.
            let running_priority = self
                .running
                .as_ref()
                .map(|run| run.priority)
                .expect("ready task with idle CPU");
            if priority > running_priority {
                self.preempt_running(now);
                return self.dispatch_next(now);
            }
        }
        None
    }

    /// Removes `task` from the CPU entirely (the transaction aborted).
    ///
    /// Work already executed stays accounted in the utilisation figures —
    /// an aborted transaction's cycles are wasted, not refunded.
    pub fn remove(&mut self, task: T, now: SimTime) -> Removed<T> {
        let runs_task = self.running.as_ref().is_some_and(|run| run.task == task);
        if runs_task {
            let run = self.running.take().expect("checked above");
            let elapsed = now.since(run.started);
            self.busy += elapsed.min(run.remaining);
            let next = self.dispatch_next(now);
            return Removed::WasRunning { next };
        }
        if let Some(slot) = self.index.remove(&task) {
            self.vacate_ready(slot);
            return Removed::WasReady;
        }
        Removed::NotPresent
    }

    /// Returns `true` if `task` is running or ready on this CPU.
    pub fn contains(&self, task: T) -> bool {
        self.running.as_ref().is_some_and(|r| r.task == task) || self.index.contains_key(&task)
    }

    /// The task currently holding the CPU, if any.
    pub fn running_task(&self) -> Option<T> {
        self.running.as_ref().map(|r| r.task)
    }

    /// Number of tasks waiting in the ready queue.
    pub fn ready_len(&self) -> usize {
        self.ready
    }

    /// Total busy time accumulated so far (completed plus preempted work).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of bursts dispatched (initial starts plus resumptions).
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Number of preemptions performed.
    pub fn preemption_count(&self) -> u64 {
        self.preemptions
    }

    fn start(
        &mut self,
        task: T,
        priority: Priority,
        remaining: SimDuration,
        seq: u64,
        now: SimTime,
    ) -> StartedBurst<T> {
        debug_assert!(self.running.is_none());
        let token = self.next_token;
        self.next_token += 1;
        self.dispatches += 1;
        self.journal(now, task, CpuJournalKind::Dispatched);
        self.running = Some(Running {
            task,
            priority,
            token,
            seq,
            started: now,
            remaining,
        });
        StartedBurst {
            task,
            token: CpuToken(token),
            finish_at: now + remaining,
        }
    }

    /// Moves the running burst back to the ready queue, preserving its
    /// seniority and charging the CPU for the work already done.
    fn preempt_running(&mut self, now: SimTime) {
        let run = self.running.take().expect("preempt with idle CPU");
        let elapsed = now.since(run.started);
        let done = elapsed.min(run.remaining);
        self.busy += done;
        self.preemptions += 1;
        self.journal(now, run.task, CpuJournalKind::Preempted);
        self.enqueue_ready(ReadyEntry {
            task: run.task,
            priority: run.priority,
            remaining: run.remaining.saturating_sub(elapsed),
            seq: run.seq,
        });
    }

    /// Picks and starts the next ready task according to the policy.
    fn dispatch_next(&mut self, now: SimTime) -> Option<StartedBurst<T>> {
        let entry = self.pop_best()?;
        if entry.remaining.is_zero() {
            // A burst preempted at its exact finish instant: it is done,
            // but its completion must still flow through the normal path so
            // the caller observes it. Start a zero-length burst; the caller
            // schedules its completion at `now`.
            let token = self.next_token;
            self.next_token += 1;
            self.dispatches += 1;
            self.journal(now, entry.task, CpuJournalKind::Dispatched);
            self.running = Some(Running {
                task: entry.task,
                priority: entry.priority,
                token,
                seq: entry.seq,
                started: now,
                remaining: SimDuration::ZERO,
            });
            return Some(StartedBurst {
                task: entry.task,
                token: CpuToken(token),
                finish_at: now,
            });
        }
        Some(self.start(entry.task, entry.priority, entry.remaining, entry.seq, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn d(ticks: u64) -> SimDuration {
        SimDuration::from_ticks(ticks)
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b = cpu.submit(1, Priority::new(0), d(50), t(0)).unwrap();
        assert_eq!(b.task, 1);
        assert_eq!(b.finish_at, t(50));
        assert_eq!(cpu.running_task(), Some(1));
    }

    #[test]
    fn lower_priority_arrival_queues() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(50), t(0)).unwrap();
        assert!(cpu.submit(2, Priority::new(1), d(10), t(5)).is_none());
        assert_eq!(cpu.ready_len(), 1);
    }

    #[test]
    fn higher_priority_arrival_preempts_and_resumes_remainder() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b1 = cpu.submit(1, Priority::new(1), d(100), t(0)).unwrap();
        let b2 = cpu.submit(2, Priority::new(9), d(30), t(40)).unwrap();
        assert_eq!(b2.finish_at, t(70));
        assert_eq!(cpu.preemption_count(), 1);

        // The original completion is now stale.
        assert_eq!(cpu.complete(b1.token, t(100)), Completion::Stale);

        // When task 2 finishes, task 1 resumes with 60 ticks remaining.
        match cpu.complete(b2.token, t(70)) {
            Completion::Finished { task, next } => {
                assert_eq!(task, 2);
                let n = next.unwrap();
                assert_eq!(n.task, 1);
                assert_eq!(n.finish_at, t(70 + 60));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fcfs_never_preempts() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::Fcfs);
        let b1 = cpu.submit(1, Priority::new(0), d(100), t(0)).unwrap();
        assert!(cpu.submit(2, Priority::new(99), d(10), t(1)).is_none());
        match cpu.complete(b1.token, t(100)) {
            Completion::Finished { task: 1, next } => {
                assert_eq!(next.unwrap().task, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fcfs_dispatches_in_arrival_order_despite_priorities() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::Fcfs);
        let b = cpu.submit(1, Priority::new(0), d(10), t(0)).unwrap();
        cpu.submit(2, Priority::new(1), d(10), t(1));
        cpu.submit(3, Priority::new(9), d(10), t(2));
        match cpu.complete(b.token, t(10)) {
            Completion::Finished { next, .. } => assert_eq!(next.unwrap().task, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b = cpu.submit(1, Priority::new(5), d(10), t(0)).unwrap();
        cpu.submit(2, Priority::new(5), d(10), t(1));
        cpu.submit(3, Priority::new(5), d(10), t(2));
        match cpu.complete(b.token, t(10)) {
            Completion::Finished { next, .. } => assert_eq!(next.unwrap().task, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn raising_ready_task_priority_preempts() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(100), t(0)).unwrap();
        cpu.submit(2, Priority::new(1), d(40), t(10));
        // Priority inheritance boosts task 2 above task 1.
        let started = cpu.set_priority(2, Priority::new(9), t(20)).unwrap();
        assert_eq!(started.task, 2);
        assert_eq!(started.finish_at, t(60));
        assert_eq!(cpu.running_task(), Some(2));
    }

    #[test]
    fn lowering_running_task_priority_redispatches() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(100), t(0)).unwrap();
        cpu.submit(2, Priority::new(4), d(40), t(10));
        let started = cpu.set_priority(1, Priority::new(0), t(30)).unwrap();
        assert_eq!(started.task, 2);
        // Task 1 ran 30 ticks; it resumes later with 70 remaining.
        match cpu.complete(started.token, t(70)) {
            Completion::Finished { task: 2, next } => {
                assert_eq!(next.unwrap().finish_at, t(70 + 70));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_priority_for_unknown_task_is_ignored() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(100), t(0)).unwrap();
        assert!(cpu.set_priority(42, Priority::new(9), t(1)).is_none());
    }

    #[test]
    fn remove_running_task_dispatches_next() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(100), t(0)).unwrap();
        cpu.submit(2, Priority::new(1), d(40), t(0));
        match cpu.remove(1, t(25)) {
            Removed::WasRunning { next } => {
                let n = next.unwrap();
                assert_eq!(n.task, 2);
                assert_eq!(n.finish_at, t(65));
            }
            other => panic!("unexpected {other:?}"),
        }
        // 25 ticks of wasted work remain charged.
        assert_eq!(cpu.busy_time(), d(25));
    }

    #[test]
    fn remove_ready_and_absent_tasks() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(5), d(100), t(0)).unwrap();
        cpu.submit(2, Priority::new(1), d(40), t(0));
        assert_eq!(cpu.remove(2, t(5)), Removed::WasReady);
        assert_eq!(cpu.remove(3, t(5)), Removed::NotPresent);
        assert_eq!(cpu.ready_len(), 0);
    }

    #[test]
    fn preemption_at_exact_finish_instant_yields_zero_burst() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b1 = cpu.submit(1, Priority::new(1), d(50), t(0)).unwrap();
        // Higher-priority arrival at exactly t=50, processed before the
        // completion event in the same instant.
        let b2 = cpu.submit(2, Priority::new(9), d(10), t(50)).unwrap();
        assert_eq!(cpu.complete(b1.token, t(50)), Completion::Stale);
        match cpu.complete(b2.token, t(60)) {
            Completion::Finished { task: 2, next } => {
                let n = next.unwrap();
                assert_eq!(n.task, 1);
                // Zero remaining: finishes at once.
                assert_eq!(n.finish_at, t(60));
                match cpu.complete(n.token, t(60)) {
                    Completion::Finished {
                        task: 1,
                        next: None,
                    } => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn busy_time_accounts_completed_work() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b = cpu.submit(1, Priority::new(1), d(50), t(0)).unwrap();
        cpu.complete(b.token, t(50));
        assert_eq!(cpu.busy_time(), d(50));
        assert_eq!(cpu.dispatch_count(), 1);
    }

    #[test]
    fn repeated_priority_updates_do_not_duplicate_dispatch() {
        // Each update invalidates the previous heap key; the task must be
        // dispatched exactly once despite three stale keys in the heap.
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        let b = cpu.submit(1, Priority::new(9), d(10), t(0)).unwrap();
        cpu.submit(2, Priority::new(1), d(10), t(0));
        cpu.submit(3, Priority::new(2), d(10), t(0));
        assert!(cpu.set_priority(2, Priority::new(3), t(1)).is_none());
        assert!(cpu.set_priority(2, Priority::new(4), t(2)).is_none());
        assert!(cpu.set_priority(2, Priority::new(5), t(3)).is_none());
        match cpu.complete(b.token, t(10)) {
            Completion::Finished { next, .. } => assert_eq!(next.unwrap().task, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cpu.ready_len(), 1);
        match cpu.remove(3, t(11)) {
            Removed::WasReady => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cpu.ready_len(), 0);
        assert!(!cpu.contains(3));
    }

    #[test]
    fn journal_records_dispatches_and_preemptions() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.set_tracing(true);
        let b1 = cpu.submit(1, Priority::new(1), d(100), t(0)).unwrap();
        let b2 = cpu.submit(2, Priority::new(9), d(30), t(40)).unwrap();
        assert_eq!(cpu.complete(b1.token, t(100)), Completion::Stale);
        cpu.complete(b2.token, t(70));
        let mut journal = Vec::new();
        cpu.drain_journal(&mut journal);
        assert_eq!(
            journal,
            vec![
                CpuJournalEntry {
                    at: t(0),
                    task: 1,
                    kind: CpuJournalKind::Dispatched
                },
                CpuJournalEntry {
                    at: t(40),
                    task: 1,
                    kind: CpuJournalKind::Preempted
                },
                CpuJournalEntry {
                    at: t(40),
                    task: 2,
                    kind: CpuJournalKind::Dispatched
                },
                CpuJournalEntry {
                    at: t(70),
                    task: 1,
                    kind: CpuJournalKind::Dispatched
                },
            ]
        );
        // Draining empties the journal.
        let mut again = Vec::new();
        cpu.drain_journal(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn journal_stays_empty_without_tracing() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(1), d(10), t(0)).unwrap();
        cpu.submit(2, Priority::new(9), d(10), t(1)).unwrap();
        let mut journal = Vec::new();
        cpu.drain_journal(&mut journal);
        assert!(journal.is_empty());
    }

    #[test]
    #[should_panic(expected = "already on the CPU")]
    fn double_submit_panics() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(1), d(50), t(0));
        cpu.submit(1, Priority::new(1), d(50), t(0));
    }

    #[test]
    #[should_panic(expected = "zero-length burst")]
    fn zero_work_panics() {
        let mut cpu: Cpu<u8> = Cpu::new(CpuPolicy::PreemptivePriority);
        cpu.submit(1, Priority::new(1), SimDuration::ZERO, t(0));
    }
}

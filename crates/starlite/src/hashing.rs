//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The kernel and the resource managers key maps by small integer ids
//! (transaction, object, and task ids). The standard library's default
//! SipHash is DoS-resistant but costs tens of nanoseconds per lookup and is
//! seeded per process, which is wasted work here: the simulation never
//! hashes attacker-controlled input. [`FxHasher`] is the multiply-xor
//! scheme popularised by rustc (Firefox's `FxHash`): a couple of
//! instructions per word, no per-process seed.
//!
//! Determinism contract: `FxHasher` has no random state, so a map's bucket
//! order is a pure function of its insertion history. No simulation result
//! may depend on map iteration order regardless — every consumer that
//! iterates one of these maps sorts before acting (see the module docs of
//! [`crate::engine`]) — but a fixed hasher additionally keeps iteration
//! order reproducible between runs, which makes divergence bugs bisectable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a random odd 64-bit constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox multiply-xor hasher. Not collision-resistant against
/// adversarial keys; only for trusted, simulation-internal ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// Builds [`FxHasher`]s; the hasher is stateless so this is a unit type.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_matches_itself_regardless_of_chunking() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn maps_work_with_integer_keys() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(9, "nine");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }
}

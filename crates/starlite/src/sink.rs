//! Zero-cost-when-disabled structured event emission.
//!
//! The paper's performance monitor records "the time when each event
//! occurred"; [`crate::Trace`] is the bounded in-kernel half of that. This
//! module is the *structured* half: simulation models are generic over an
//! [`EventSink`] and push typed events into it as they happen. The sink is
//! chosen at monomorphisation time, so a model instantiated with
//! [`NullSink`] compiles the emission paths down to nothing — `enabled()`
//! is a `const false` the optimiser folds away, and no event value is ever
//! constructed.
//!
//! Layers that cannot see the unified event type (the CPU model here, the
//! lock table in `rtdb`, the network in `netsim`) instead keep a small
//! *journal* of layer-local events behind an explicit tracing flag; the
//! simulation model drains the journal after each call and converts the
//! entries into its own event type before emitting them into the sink.
//! With tracing off the journals stay empty and the drain is a no-op.
//!
//! # Example
//!
//! ```
//! use starlite::{EventSink, NullSink, SimTime, VecSink};
//!
//! fn emit_one<S: EventSink<&'static str>>(sink: &mut S) {
//!     if sink.enabled() {
//!         sink.emit(SimTime::from_ticks(3), "txn 1 granted o4");
//!     }
//! }
//!
//! let mut none = NullSink;
//! emit_one(&mut none); // compiles to nothing
//!
//! let mut all = VecSink::new();
//! emit_one(&mut all);
//! assert_eq!(all.events(), &[(SimTime::from_ticks(3), "txn 1 granted o4")]);
//! ```

use crate::time::SimTime;

/// A receiver of timestamped, typed simulation events.
///
/// Implementations decide what to do with each event (count it, buffer it,
/// format it). Models call [`EventSink::enabled`] before doing any work to
/// *construct* an event, so disabled sinks cost one predictable branch —
/// and with [`NullSink`] not even that, because the answer is a constant.
pub trait EventSink<E> {
    /// Whether this sink type can ever receive events. `false` only for
    /// [`NullSink`] (and wrappers around it): the constant participates in
    /// monomorphisation, so models can gate entire drain loops behind
    /// `if S::ENABLED` and have the optimiser delete them — including the
    /// journal bookkeeping a runtime `enabled()` branch would still have
    /// to reach past.
    const ENABLED: bool = true;

    /// Whether this sink wants events at all. Models must gate event
    /// construction on this so a disabled sink pays nothing. Defaults to
    /// [`Self::ENABLED`]; override only for sinks toggled at runtime.
    fn enabled(&self) -> bool {
        Self::ENABLED
    }

    /// Receives one event stamped with the simulation time it occurred at.
    ///
    /// Events arrive in deterministic model order: emission happens inside
    /// event handlers of a deterministic simulation, so the same seed
    /// produces the same event sequence, byte for byte.
    fn emit(&mut self, at: SimTime, event: E);
}

/// The disabled sink: `enabled()` is `false`, `emit` is unreachable in
/// practice. Monomorphising a model with `NullSink` dead-code-eliminates
/// every emission path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<E> EventSink<E> for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _at: SimTime, _event: E) {}
}

/// A sink that buffers every event in order — the workhorse for tests and
/// for post-processing passes (golden traces, blocking-chain analysis).
#[derive(Debug, Clone)]
pub struct VecSink<E> {
    events: Vec<(SimTime, E)>,
}

impl<E> VecSink<E> {
    /// Creates an empty buffering sink.
    pub fn new() -> Self {
        VecSink { events: Vec::new() }
    }

    /// The buffered `(time, event)` pairs in emission order.
    pub fn events(&self) -> &[(SimTime, E)] {
        &self.events
    }

    /// Consumes the sink, returning the buffered events.
    pub fn into_events(self) -> Vec<(SimTime, E)> {
        self.events
    }
}

impl<E> Default for VecSink<E> {
    fn default() -> Self {
        VecSink::new()
    }
}

impl<E> EventSink<E> for VecSink<E> {
    #[inline]
    fn emit(&mut self, at: SimTime, event: E) {
        self.events.push((at, event));
    }
}

/// Fans each event out to two sinks in order (`a` first). Events must be
/// `Clone`; tee of a tee composes for wider fan-out. `ENABLED` is the OR
/// of the halves, so teeing a [`NullSink`] against a real sink keeps the
/// real sink's instrumentation and nothing else.
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over the two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<E: Clone, A: EventSink<E>, B: EventSink<E>> EventSink<E> for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    #[inline]
    fn emit(&mut self, at: SimTime, event: E) {
        if self.a.enabled() {
            self.a.emit(at, event.clone());
        }
        if self.b.enabled() {
            self.b.emit(at, event);
        }
    }
}

/// Forwarding impl so a model can own `S = &mut ConcreteSink` while the
/// caller keeps the sink (and harvests it after the run).
impl<E, S: EventSink<E>> EventSink<E> for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn emit(&mut self, at: SimTime, event: E) {
        (**self).emit(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!EventSink::<u32>::enabled(&sink));
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink = VecSink::new();
        sink.emit(SimTime::from_ticks(1), "a");
        sink.emit(SimTime::from_ticks(2), "b");
        assert!(sink.enabled());
        assert_eq!(
            sink.into_events(),
            vec![(SimTime::from_ticks(1), "a"), (SimTime::from_ticks(2), "b")]
        );
    }

    #[test]
    fn tee_fans_out_and_inherits_enabled() {
        let mut tee = TeeSink::new(VecSink::new(), VecSink::new());
        tee.emit(SimTime::from_ticks(4), 9u8);
        assert_eq!(tee.a.events(), tee.b.events());
        assert_eq!(tee.a.events(), &[(SimTime::from_ticks(4), 9u8)]);

        let null_tee = TeeSink::new(NullSink, NullSink);
        assert!(!EventSink::<u8>::enabled(&null_tee));
        const { assert!(!<TeeSink<NullSink, NullSink> as EventSink<u8>>::ENABLED) };
        let half = TeeSink::new(NullSink, VecSink::<u8>::new());
        assert!(EventSink::<u8>::enabled(&half));
    }

    #[test]
    fn mut_ref_forwards() {
        let mut sink = VecSink::new();
        {
            let fwd = &mut sink;
            assert!(EventSink::<u8>::enabled(&fwd));
            fwd.emit(SimTime::ZERO, 7u8);
        }
        assert_eq!(sink.events(), &[(SimTime::ZERO, 7u8)]);
    }
}

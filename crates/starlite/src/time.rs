//! Virtual time for the simulation kernel.
//!
//! All timing in the prototyping environment is expressed in *ticks* of
//! simulated time. One tick is nominally one microsecond, but nothing in the
//! kernel depends on that interpretation; experiments define their own "time
//! unit" (the paper's communication-delay axis, for example, is measured in
//! multiples of the per-object processing time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks per simulated millisecond.
pub const TICKS_PER_MS: u64 = 1_000;

/// Number of ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An absolute instant of virtual time, measured in ticks since the start of
/// the simulation.
///
/// `SimTime` is totally ordered; the simulation clock never moves backwards.
///
/// # Example
///
/// ```
/// use starlite::{SimTime, SimDuration};
/// let t = SimTime::from_ticks(5) + SimDuration::from_ticks(10);
/// assert_eq!(t.ticks(), 15);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ticks` ticks after the start of the simulation.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant `ms` simulated milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * TICKS_PER_MS)
    }

    /// Creates an instant `secs` simulated seconds after the start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Returns the number of ticks since the start of the simulation.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional simulated seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation clock is
    /// monotone, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`since` called with a later instant"),
        )
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// A span of virtual time, measured in ticks.
///
/// # Example
///
/// ```
/// use starlite::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_ticks(500);
/// assert_eq!(d.ticks(), 2_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ticks` ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a duration of `ms` simulated milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * TICKS_PER_MS)
    }

    /// Creates a duration of `secs` simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Returns the duration in ticks.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional simulated seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Returns `true` for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the difference `self - other`, or zero when `other` is longer.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(3);
        let d = SimDuration::from_ticks(250);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_measures_elapsed_ticks() {
        let a = SimTime::from_ticks(100);
        let b = SimTime::from_ticks(175);
        assert_eq!(b.since(a).ticks(), 75);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_when_clock_would_run_backwards() {
        let a = SimTime::from_ticks(10);
        let b = SimTime::from_ticks(20);
        let _ = a.since(b);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_ticks(10);
        let b = SimTime::from_ticks(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).ticks(), 10);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_ticks(100);
        assert_eq!(d.mul_f64(1.5).ticks(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!((d * 3).ticks(), 300);
        assert_eq!((d / 4).ticks(), 25);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ticks).sum();
        assert_eq!(total.ticks(), 10);
    }

    #[test]
    fn seconds_conversions() {
        assert_eq!(SimTime::from_secs(2).ticks(), 2 * TICKS_PER_SEC);
        assert!((SimDuration::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }
}

//! The simulation engine: a logical clock driving a cancellable event queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::event::{EventId, Scheduled};
use crate::time::{SimDuration, SimTime};

/// A simulation model: the state machine the engine drives.
///
/// The engine pops the next event, advances the clock, and calls
/// [`Model::handle`]. The handler reacts by mutating model state and by
/// scheduling (or cancelling) future events through the [`Scheduler`].
///
/// See the [crate-level example](crate) for a complete model.
pub trait Model {
    /// The event payload type delivered to [`Model::handle`].
    type Event;

    /// Reacts to one event at the current virtual time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The clock and event queue shared by the engine and the running model.
///
/// A `Scheduler` is handed to [`Model::handle`] so handlers can read the
/// clock, schedule future events, and cancel previously scheduled ones.
pub struct Scheduler<E> {
    clock: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Ids of queue entries that are still live (scheduled, not yet fired or
    /// cancelled). Bounded by the queue length.
    pending: HashSet<EventId>,
    /// Ids of queue entries cancelled but not yet physically removed; they
    /// are skipped (and purged) when popped.
    cancelled: HashSet<EventId>,
    next_seq: u64,
    executed: u64,
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("cancelled", &self.cancelled.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled. Returns a handle usable with [`Scheduler::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; the clock is monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.clock,
            "cannot schedule an event in the past ({at} < {})",
            self.clock
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.pending.insert(id);
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            id,
            payload: event,
        }));
        id
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventId {
        self.schedule(self.clock + after, event)
    }

    /// Schedules `event` to fire at the current instant, after all handlers
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule(self.clock, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and now never will),
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Returns `true` if `id` is scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.pending.contains(&id)
    }

    /// Pops the next live event, advancing the clock to its firing time.
    fn pop_next(&mut self) -> Option<Scheduled<E>> {
        while let Some(Reverse(entry)) = self.queue.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.clock, "event queue went backwards");
            self.pending.remove(&entry.id);
            self.clock = entry.at;
            self.executed += 1;
            return Some(entry);
        }
        None
    }

    /// Number of events executed so far.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (excluding cancelled entries not
    /// yet purged from the queue).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// The discrete-event simulation engine.
///
/// Owns the [`Model`] and its [`Scheduler`], and runs the classic DES loop:
/// pop the earliest event, advance the clock, dispatch to the model.
///
/// See the [crate-level example](crate).
pub struct Engine<M: Model> {
    sched: Scheduler<M::Event>,
    model: M,
}

impl<M: Model> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("sched", &self.sched)
            .finish()
    }
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            sched: Scheduler::new(),
            model,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Borrows the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Executes the next pending event, if any. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_next() {
            Some(entry) => {
                self.model.handle(entry.payload, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or `horizon` would be crossed; events
    /// scheduled exactly at the horizon still fire. Returns the number of
    /// events executed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0;
        loop {
            match self.sched.queue.peek() {
                Some(Reverse(entry)) if entry.at <= horizon => {}
                _ => break,
            }
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Runs until the event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is `Some(n)` and more than `n` events fire —
    /// a guard against accidentally divergent models.
    pub fn run_to_completion(&mut self, max_events: Option<u64>) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
            if let Some(limit) = max_events {
                assert!(n <= limit, "simulation exceeded {limit} events");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        CancelAndStop(EventId),
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(tag) => self.seen.push((sched.now().ticks(), tag)),
                Ev::CancelAndStop(id) => {
                    assert!(sched.cancel(id));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(20), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(3));
        s.schedule(SimTime::from_ticks(5), Ev::Tag(4));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(5, 4), (10, 2), (10, 3), (20, 1)]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let victim = s.schedule(SimTime::from_ticks(50), Ev::Tag(9));
        s.schedule(SimTime::from_ticks(1), Ev::CancelAndStop(victim));
        s.schedule(SimTime::from_ticks(60), Ev::Tag(7));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(60, 7)]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        eng.run_to_completion(None);
        assert!(!eng.scheduler_mut().cancel(id));
    }

    #[test]
    fn double_cancel_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        assert!(eng.scheduler_mut().cancel(id));
        assert!(!eng.scheduler_mut().cancel(id));
        eng.run_to_completion(None);
        assert!(eng.model().seen.is_empty());
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(20), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(21), Ev::Tag(3));
        eng.run_until(SimTime::from_ticks(20));
        assert_eq!(eng.model().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(eng.now(), SimTime::from_ticks(20));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(10), Ev::Tag(1));
        eng.step();
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(5), Ev::Tag(2));
    }

    #[test]
    fn schedule_now_runs_after_current_instant_handlers() {
        struct Chain {
            order: Vec<u32>,
        }
        enum CEv {
            First,
            Second,
            Injected,
        }
        impl Model for Chain {
            type Event = CEv;
            fn handle(&mut self, ev: CEv, sched: &mut Scheduler<CEv>) {
                match ev {
                    CEv::First => {
                        self.order.push(1);
                        sched.schedule_now(CEv::Injected);
                    }
                    CEv::Second => self.order.push(2),
                    CEv::Injected => self.order.push(3),
                }
            }
        }
        let mut eng = Engine::new(Chain { order: vec![] });
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(5), CEv::First);
        s.schedule(SimTime::from_ticks(5), CEv::Second);
        eng.run_to_completion(None);
        // Injected was scheduled while handling First, so it fires after
        // Second (which was enqueued earlier for the same instant).
        assert_eq!(eng.model().order, vec![1, 2, 3]);
    }
}

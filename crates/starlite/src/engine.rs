//! The simulation engine: a logical clock driving a cancellable event queue.
//!
//! # Queue layout
//!
//! The queue is a binary heap of three-word [`QueueKey`]s (firing time,
//! sequence number, slab handle) over a slab of payloads. Scheduling takes
//! a free slot from the slab and pushes a key; cancellation is an O(1)
//! slot invalidation (bump the slot's generation, reclaim it) that leaves
//! the key behind as a tombstone; popping skips tombstones by comparing
//! the key's generation against the slot's. When tombstones outnumber the
//! live keys the heap is rebuilt without them, so memory stays bounded by
//! the live event count no matter how many cancellations a long run
//! performs. No path hashes anything.
//!
//! # Determinism
//!
//! Events fire in `(time, sequence)` order — a total order, since sequence
//! numbers are unique — and neither the slab layout, the slot reuse
//! policy, nor a tombstone purge can affect it: purging only removes keys
//! that would have been skipped anyway. Simulation results are therefore
//! byte-identical to the pre-slab implementation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::event::{EventId, QueueKey};
use crate::time::{SimDuration, SimTime};

/// A simulation model: the state machine the engine drives.
///
/// The engine pops the next event, advances the clock, and calls
/// [`Model::handle`]. The handler reacts by mutating model state and by
/// scheduling (or cancelling) future events through the [`Scheduler`].
///
/// See the [crate-level example](crate) for a complete model.
pub trait Model {
    /// The event payload type delivered to [`Model::handle`].
    type Event;

    /// Reacts to one event at the current virtual time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// One slab slot: the payload of a live event, or vacant. The generation
/// counts how many times the slot has been vacated; handles and queue keys
/// carry the generation they were issued under, so stale ones are
/// recognised in O(1).
#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// Counters describing the work a [`Scheduler`] has performed, for
/// events-per-second throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled so far.
    pub scheduled: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Events executed (delivered to the model).
    pub executed: u64,
    /// Tombstone keys removed by heap rebuilds (excluding those skipped
    /// one at a time during pops).
    pub purged: u64,
    /// Events currently pending.
    pub pending: usize,
}

/// The clock and event queue shared by the engine and the running model.
///
/// A `Scheduler` is handed to [`Model::handle`] so handlers can read the
/// clock, schedule future events, and cancel previously scheduled ones.
pub struct Scheduler<E> {
    clock: SimTime,
    queue: BinaryHeap<Reverse<QueueKey>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Occupied slot count == live (pending) events.
    live: usize,
    /// Keys in `queue` whose slot generation no longer matches (cancelled
    /// events not yet skipped or purged).
    stale_keys: usize,
    next_seq: u64,
    executed: u64,
    scheduled: u64,
    cancelled: u64,
    purged: u64,
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("clock", &self.clock)
            .field("pending", &self.live)
            .field("tombstones", &self.stale_keys)
            .field("executed", &self.executed)
            .finish()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stale_keys: 0,
            next_seq: 0,
            executed: 0,
            scheduled: 0,
            cancelled: 0,
            purged: 0,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled. Returns a handle usable with [`Scheduler::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; the clock is monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.clock,
            "cannot schedule an event in the past ({at} < {})",
            self.clock
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    payload: None,
                });
                slot
            }
        };
        let cell = &mut self.slots[slot as usize];
        debug_assert!(
            cell.payload.is_none(),
            "free list returned an occupied slot"
        );
        cell.payload = Some(event);
        let id = EventId::pack(slot, cell.generation);
        self.live += 1;
        self.scheduled += 1;
        self.queue.push(Reverse(QueueKey { at, seq, id }));
        debug_assert_eq!(self.queue.len(), self.live + self.stale_keys);
        id
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventId {
        self.schedule(self.clock + after, event)
    }

    /// Schedules `event` to fire at the current instant, after all handlers
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule(self.clock, event)
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event had not yet fired (and now never will),
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(cell) = self.slots.get(id.slot() as usize) else {
            return false;
        };
        if cell.generation != id.generation() || cell.payload.is_none() {
            return false;
        }
        self.vacate(id.slot());
        self.stale_keys += 1;
        self.cancelled += 1;
        debug_assert_eq!(self.queue.len(), self.live + self.stale_keys);
        // Keep the heap from silting up with tombstones on cancel-heavy
        // workloads: once they outnumber live keys (and are worth the
        // linear rebuild), drop them all at once.
        if self.stale_keys > 64 && self.stale_keys > self.live {
            self.purge_tombstones();
        }
        true
    }

    /// Returns `true` if `id` is scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot() as usize)
            .is_some_and(|cell| cell.generation == id.generation() && cell.payload.is_some())
    }

    /// Reclaims `slot`, bumping its generation so outstanding handles and
    /// queue keys for the old occupant become stale.
    fn vacate(&mut self, slot: u32) -> E {
        let cell = &mut self.slots[slot as usize];
        let payload = cell.payload.take().expect("vacating an empty slot");
        cell.generation = cell.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        payload
    }

    /// Rebuilds the heap without tombstone keys.
    fn purge_tombstones(&mut self) {
        let keys = std::mem::take(&mut self.queue).into_vec();
        let mut kept = Vec::with_capacity(self.live);
        for Reverse(key) in keys {
            let cell = &self.slots[key.id.slot() as usize];
            if cell.generation == key.id.generation() {
                kept.push(Reverse(key));
            }
        }
        self.purged += self.stale_keys as u64;
        self.stale_keys = 0;
        self.queue = BinaryHeap::from(kept);
        debug_assert_eq!(self.queue.len(), self.live);
    }

    /// Firing time of the next live event, discarding any tombstone keys
    /// sitting on top of the heap (dropping a stale key is unobservable, so
    /// this may be called from `&mut self` contexts freely).
    fn next_event_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse(key)) = self.queue.peek() {
            let cell = &self.slots[key.id.slot() as usize];
            if cell.generation == key.id.generation() {
                return Some(key.at);
            }
            self.queue.pop();
            self.stale_keys -= 1;
        }
        None
    }

    /// Pops the next live event, advancing the clock to its firing time.
    fn pop_next(&mut self) -> Option<E> {
        while let Some(Reverse(key)) = self.queue.pop() {
            let cell = &self.slots[key.id.slot() as usize];
            if cell.generation != key.id.generation() {
                self.stale_keys -= 1;
                continue;
            }
            debug_assert!(key.at >= self.clock, "event queue went backwards");
            let payload = self.vacate(key.id.slot());
            self.clock = key.at;
            self.executed += 1;
            return Some(payload);
        }
        // The queue drained: every slot must be vacant and every tombstone
        // accounted for, or the slab and heap have diverged.
        debug_assert_eq!(self.live, 0, "queue drained with occupied slots");
        debug_assert_eq!(
            self.stale_keys, 0,
            "queue drained with tombstones unaccounted"
        );
        None
    }

    /// Number of events executed so far.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (excluding tombstones not yet
    /// purged from the queue).
    pub fn pending_count(&self) -> usize {
        self.live
    }

    /// Snapshot of the queue's throughput counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.scheduled,
            cancelled: self.cancelled,
            executed: self.executed,
            purged: self.purged,
            pending: self.live,
        }
    }
}

/// The discrete-event simulation engine.
///
/// Owns the [`Model`] and its [`Scheduler`], and runs the classic DES loop:
/// pop the earliest event, advance the clock, dispatch to the model.
///
/// See the [crate-level example](crate).
pub struct Engine<M: Model> {
    sched: Scheduler<M::Event>,
    model: M,
}

impl<M: Model> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("sched", &self.sched)
            .finish()
    }
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            sched: Scheduler::new(),
            model,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Borrows the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Snapshot of the event queue's throughput counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.sched.stats()
    }

    /// Executes the next pending event, if any. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_next() {
            Some(payload) => {
                self.model.handle(payload, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or `horizon` would be crossed; events
    /// scheduled exactly at the horizon still fire. Cancelled keys on top
    /// of the heap are skipped when deciding, so the horizon is respected
    /// even when the earliest key is a tombstone. Returns the number of
    /// events executed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0;
        while self.sched.next_event_time().is_some_and(|at| at <= horizon) {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Runs until the event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is `Some(n)` and more than `n` events fire —
    /// a guard against accidentally divergent models.
    pub fn run_to_completion(&mut self, max_events: Option<u64>) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
            if let Some(limit) = max_events {
                assert!(n <= limit, "simulation exceeded {limit} events");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        CancelAndStop(EventId),
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(tag) => self.seen.push((sched.now().ticks(), tag)),
                Ev::CancelAndStop(id) => {
                    assert!(sched.cancel(id));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(20), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(3));
        s.schedule(SimTime::from_ticks(5), Ev::Tag(4));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(5, 4), (10, 2), (10, 3), (20, 1)]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let victim = s.schedule(SimTime::from_ticks(50), Ev::Tag(9));
        s.schedule(SimTime::from_ticks(1), Ev::CancelAndStop(victim));
        s.schedule(SimTime::from_ticks(60), Ev::Tag(7));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(60, 7)]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        eng.run_to_completion(None);
        assert!(!eng.scheduler_mut().cancel(id));
    }

    #[test]
    fn double_cancel_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        assert!(eng.scheduler_mut().cancel(id));
        assert!(!eng.scheduler_mut().cancel(id));
        eng.run_to_completion(None);
        assert!(eng.model().seen.is_empty());
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(20), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(21), Ev::Tag(3));
        eng.run_until(SimTime::from_ticks(20));
        assert_eq!(eng.model().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(eng.now(), SimTime::from_ticks(20));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(10), Ev::Tag(1));
        eng.step();
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(5), Ev::Tag(2));
    }

    #[test]
    fn schedule_now_runs_after_current_instant_handlers() {
        struct Chain {
            order: Vec<u32>,
        }
        enum CEv {
            First,
            Second,
            Injected,
        }
        impl Model for Chain {
            type Event = CEv;
            fn handle(&mut self, ev: CEv, sched: &mut Scheduler<CEv>) {
                match ev {
                    CEv::First => {
                        self.order.push(1);
                        sched.schedule_now(CEv::Injected);
                    }
                    CEv::Second => self.order.push(2),
                    CEv::Injected => self.order.push(3),
                }
            }
        }
        let mut eng = Engine::new(Chain { order: vec![] });
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(5), CEv::First);
        s.schedule(SimTime::from_ticks(5), CEv::Second);
        eng.run_to_completion(None);
        // Injected was scheduled while handling First, so it fires after
        // Second (which was enqueued earlier for the same instant).
        assert_eq!(eng.model().order, vec![1, 2, 3]);
    }

    #[test]
    fn slot_reuse_does_not_alias_handles() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let a = s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        assert!(s.cancel(a));
        // The slot is reused immediately; the new handle must differ.
        let b = s.schedule(SimTime::from_ticks(10), Ev::Tag(2));
        assert_ne!(a, b);
        assert!(!s.cancel(a), "stale handle must not cancel the new event");
        assert!(s.is_pending(b));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(10, 2)]);
    }

    #[test]
    fn mass_cancellation_purges_tombstones() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let ids: Vec<EventId> = (0..1_000)
            .map(|i| s.schedule(SimTime::from_ticks(100 + i), Ev::Tag(i as u32)))
            .collect();
        for id in &ids[..900] {
            assert!(s.cancel(*id));
        }
        // Tombstones outnumbered live keys long ago; the heap must have
        // been rebuilt down to the live events (plus at most the batch
        // cancelled since the last purge).
        assert!(s.queue.len() < 300, "heap kept {} keys", s.queue.len());
        assert_eq!(s.pending_count(), 100);
        let stats = s.stats();
        assert_eq!(stats.cancelled, 900);
        assert!(stats.purged > 0);
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen.len(), 100);
        assert_eq!(eng.queue_stats().executed, 100);
    }
}

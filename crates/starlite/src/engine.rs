//! The simulation engine: a logical clock driving a cancellable event queue.
//!
//! # Queue layout
//!
//! The queue behind [`Scheduler`] is a hierarchical timing wheel
//! ([`crate::queue::WheelQueue`]): per-tick buckets for the near future,
//! exponentially coarser levels above, one-word occupancy bitmaps to skip
//! empty stretches of virtual time, and a slab of payloads addressed by
//! generation-tagged handles so cancellation is an O(1) slot invalidation.
//! The original binary-heap queue is retained as the executable reference
//! model ([`crate::queue::HeapQueue`]); building with the `heap-queue`
//! cargo feature swaps it back in here, and the equivalence proptests
//! drive both implementations against each other directly.
//!
//! # Determinism
//!
//! Events fire in `(time, sequence)` order — a total order, since sequence
//! numbers are unique — and neither the queue implementation, the slab
//! layout, the slot reuse policy, nor a tombstone purge can affect it.
//! Simulation results are byte-identical across both queues; see the
//! [queue module docs](crate::queue) for the wheel's ordering argument.

use std::fmt;

use crate::event::EventId;
pub use crate::queue::QueueStats;
use crate::time::{SimDuration, SimTime};

#[cfg(not(feature = "heap-queue"))]
type QueueImpl<E> = crate::queue::WheelQueue<E>;
#[cfg(feature = "heap-queue")]
type QueueImpl<E> = crate::queue::HeapQueue<E>;

/// A simulation model: the state machine the engine drives.
///
/// The engine pops the next event, advances the clock, and calls
/// [`Model::handle`]. The handler reacts by mutating model state and by
/// scheduling (or cancelling) future events through the [`Scheduler`].
///
/// See the [crate-level example](crate) for a complete model.
pub trait Model {
    /// The event payload type delivered to [`Model::handle`].
    type Event;

    /// Reacts to one event at the current virtual time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The clock and event queue shared by the engine and the running model.
///
/// A `Scheduler` is handed to [`Model::handle`] so handlers can read the
/// clock, schedule future events, and cancel previously scheduled ones.
/// It is a thin wrapper over the compile-time-selected queue
/// implementation (timing wheel by default, binary heap under the
/// `heap-queue` feature).
pub struct Scheduler<E> {
    queue: QueueImpl<E>,
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("queue", &self.queue)
            .finish()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: QueueImpl::new(),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled. Returns a handle usable with [`Scheduler::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; the clock is monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        self.queue.schedule(at, event)
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.queue.now() + after, event)
    }

    /// Schedules `event` to fire at the current instant, after all handlers
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.schedule(self.queue.now(), event)
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event had not yet fired (and now never will),
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Returns `true` if `id` is scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id)
    }

    /// Firing time of the next live event, discarding tombstones along the
    /// way (unobservable, so this may be called from `&mut self` contexts
    /// freely).
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.next_event_time()
    }

    /// Pops the next live event, advancing the clock to its firing time.
    fn pop_next(&mut self) -> Option<E> {
        self.queue.pop_next()
    }

    /// Number of events executed so far.
    pub fn executed_count(&self) -> u64 {
        self.queue.executed_count()
    }

    /// Number of events currently pending (excluding tombstones not yet
    /// purged from the queue).
    pub fn pending_count(&self) -> usize {
        self.queue.pending_count()
    }

    /// Number of keys the queue currently retains, including tombstones —
    /// for tests and diagnostics of the purge policy.
    pub fn key_count(&self) -> usize {
        self.queue.key_count()
    }

    /// Snapshot of the queue's throughput counters.
    pub fn stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// The discrete-event simulation engine.
///
/// Owns the [`Model`] and its [`Scheduler`], and runs the classic DES loop:
/// pop the earliest event, advance the clock, dispatch to the model.
///
/// See the [crate-level example](crate).
pub struct Engine<M: Model> {
    sched: Scheduler<M::Event>,
    model: M,
}

impl<M: Model> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("sched", &self.sched)
            .finish()
    }
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            sched: Scheduler::new(),
            model,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Borrows the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Snapshot of the event queue's throughput counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.sched.stats()
    }

    /// Executes the next pending event, if any. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_next() {
            Some(payload) => {
                self.model.handle(payload, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or `horizon` would be crossed; events
    /// scheduled exactly at the horizon still fire. Cancelled keys at the
    /// front of the queue are skipped when deciding, so the horizon is
    /// respected even when the earliest key is a tombstone. Returns the
    /// number of events executed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0;
        while self.sched.next_event_time().is_some_and(|at| at <= horizon) {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Runs until the event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is `Some(n)` and more than `n` events fire —
    /// a guard against accidentally divergent models.
    pub fn run_to_completion(&mut self, max_events: Option<u64>) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
            if let Some(limit) = max_events {
                assert!(n <= limit, "simulation exceeded {limit} events");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        CancelAndStop(EventId),
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(tag) => self.seen.push((sched.now().ticks(), tag)),
                Ev::CancelAndStop(id) => {
                    assert!(sched.cancel(id));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(20), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(10), Ev::Tag(3));
        s.schedule(SimTime::from_ticks(5), Ev::Tag(4));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(5, 4), (10, 2), (10, 3), (20, 1)]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let victim = s.schedule(SimTime::from_ticks(50), Ev::Tag(9));
        s.schedule(SimTime::from_ticks(1), Ev::CancelAndStop(victim));
        s.schedule(SimTime::from_ticks(60), Ev::Tag(7));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(60, 7)]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        eng.run_to_completion(None);
        assert!(!eng.scheduler_mut().cancel(id));
    }

    #[test]
    fn double_cancel_reports_false() {
        let mut eng = Engine::new(Recorder::default());
        let id = eng
            .scheduler_mut()
            .schedule(SimTime::from_ticks(1), Ev::Tag(0));
        assert!(eng.scheduler_mut().cancel(id));
        assert!(!eng.scheduler_mut().cancel(id));
        eng.run_to_completion(None);
        assert!(eng.model().seen.is_empty());
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(20), Ev::Tag(2));
        s.schedule(SimTime::from_ticks(21), Ev::Tag(3));
        eng.run_until(SimTime::from_ticks(20));
        assert_eq!(eng.model().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(eng.now(), SimTime::from_ticks(20));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen.len(), 3);
    }

    #[test]
    fn schedule_between_horizon_and_next_event_still_fires_first() {
        // A horizon-bounded run may advance the queue's internal position
        // past the horizon while locating the next event; an event then
        // scheduled between the horizon and that next event must still
        // fire first (the wheel's `early` path).
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        s.schedule(SimTime::from_ticks(5_000), Ev::Tag(2));
        eng.run_until(SimTime::from_ticks(100));
        assert_eq!(eng.model().seen, vec![(10, 1)]);
        let s = eng.scheduler_mut();
        let kept = s.schedule(SimTime::from_ticks(200), Ev::Tag(3));
        let gone = s.schedule(SimTime::from_ticks(300), Ev::Tag(4));
        assert!(s.is_pending(kept));
        assert!(s.cancel(gone));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(10, 1), (200, 3), (5_000, 2)]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(10), Ev::Tag(1));
        eng.step();
        eng.scheduler_mut()
            .schedule(SimTime::from_ticks(5), Ev::Tag(2));
    }

    #[test]
    fn schedule_now_runs_after_current_instant_handlers() {
        struct Chain {
            order: Vec<u32>,
        }
        enum CEv {
            First,
            Second,
            Injected,
        }
        impl Model for Chain {
            type Event = CEv;
            fn handle(&mut self, ev: CEv, sched: &mut Scheduler<CEv>) {
                match ev {
                    CEv::First => {
                        self.order.push(1);
                        sched.schedule_now(CEv::Injected);
                    }
                    CEv::Second => self.order.push(2),
                    CEv::Injected => self.order.push(3),
                }
            }
        }
        let mut eng = Engine::new(Chain { order: vec![] });
        let s = eng.scheduler_mut();
        s.schedule(SimTime::from_ticks(5), CEv::First);
        s.schedule(SimTime::from_ticks(5), CEv::Second);
        eng.run_to_completion(None);
        // Injected was scheduled while handling First, so it fires after
        // Second (which was enqueued earlier for the same instant).
        assert_eq!(eng.model().order, vec![1, 2, 3]);
    }

    #[test]
    fn slot_reuse_does_not_alias_handles() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let a = s.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        assert!(s.cancel(a));
        // The slot is reused immediately; the new handle must differ.
        let b = s.schedule(SimTime::from_ticks(10), Ev::Tag(2));
        assert_ne!(a, b);
        assert!(!s.cancel(a), "stale handle must not cancel the new event");
        assert!(s.is_pending(b));
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen, vec![(10, 2)]);
    }

    #[test]
    fn far_future_events_cascade_in_order() {
        // Spread events across several wheel levels (deltas from a few
        // ticks to hundreds of thousands) and check global firing order.
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let times = [
            3u64,
            70,
            64,
            4_095,
            4_096,
            4_097,
            262_143,
            262_144,
            1 << 30,
            63,
        ];
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_ticks(t), Ev::Tag(i as u32));
        }
        eng.run_to_completion(None);
        let mut expect: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        expect.sort();
        assert_eq!(eng.model().seen, expect);
    }

    #[test]
    fn mass_cancellation_purges_tombstones() {
        let mut eng = Engine::new(Recorder::default());
        let s = eng.scheduler_mut();
        let ids: Vec<EventId> = (0..1_000)
            .map(|i| s.schedule(SimTime::from_ticks(100 + i), Ev::Tag(i as u32)))
            .collect();
        for id in &ids[..900] {
            assert!(s.cancel(*id));
        }
        // Tombstones outnumbered live keys long ago; the queue must have
        // purged down to the live events (plus at most the batch
        // cancelled since the last purge).
        assert!(s.key_count() < 300, "queue kept {} keys", s.key_count());
        assert_eq!(s.pending_count(), 100);
        let stats = s.stats();
        assert_eq!(stats.cancelled, 900);
        assert!(stats.purged > 0);
        eng.run_to_completion(None);
        assert_eq!(eng.model().seen.len(), 100);
        assert_eq!(eng.queue_stats().executed, 100);
    }
}

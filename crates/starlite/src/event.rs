//! Event identities and queue entries.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A unique handle for a scheduled event, usable for cancellation.
///
/// Identifiers are never reused within one [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

/// A queue entry: an event payload with its firing time and a sequence
/// number providing a deterministic total order among same-time events.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub at: SimTime,
    pub seq: u64,
    pub id: EventId,
    pub payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Orders by firing time, then by scheduling sequence; this is the
    /// kernel's deterministic tie-break.
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, seq: u64) -> Scheduled<()> {
        Scheduled {
            at: SimTime::from_ticks(at),
            seq,
            id: EventId(seq),
            payload: (),
        }
    }

    #[test]
    fn orders_by_time_then_sequence() {
        assert!(entry(1, 9) < entry(2, 0));
        assert!(entry(5, 1) < entry(5, 2));
        assert_eq!(entry(5, 1), entry(5, 1));
    }
}

//! Event identities and queue entries.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A unique handle for a scheduled event, usable for cancellation.
///
/// The handle is a `(slot, generation)` pair into the scheduler's event
/// slab, packed into one word: the low 32 bits address the slot, the high
/// 32 bits carry the slot's generation at scheduling time. Slots are
/// recycled aggressively, but every reuse bumps the generation, so a stale
/// handle (an event that already fired or was cancelled) never aliases a
/// live one within the same [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Packs a slot index and generation into a handle.
    pub(crate) const fn pack(slot: u32, generation: u32) -> Self {
        EventId(((generation as u64) << 32) | slot as u64)
    }

    /// The slab slot this handle addresses.
    pub(crate) const fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation this handle was issued under.
    pub(crate) const fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Returns the raw identifier value (packed slot and generation).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}.{}", self.slot(), self.generation())
    }
}

/// A heap entry: the firing time, a sequence number providing a
/// deterministic total order among same-time events, and the slab handle
/// of the payload. Payloads live in the scheduler's slab, not in the heap,
/// so sift operations move three words instead of a full event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueKey {
    pub at: SimTime,
    pub seq: u64,
    pub id: EventId,
}

impl PartialEq for QueueKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for QueueKey {}

impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueKey {
    /// Orders by firing time, then by scheduling sequence; this is the
    /// kernel's deterministic tie-break.
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, seq: u64) -> QueueKey {
        QueueKey {
            at: SimTime::from_ticks(at),
            seq,
            id: EventId::pack(seq as u32, 0),
        }
    }

    #[test]
    fn orders_by_time_then_sequence() {
        assert!(entry(1, 9) < entry(2, 0));
        assert!(entry(5, 1) < entry(5, 2));
        assert_eq!(entry(5, 1), entry(5, 1));
    }

    #[test]
    fn pack_round_trips() {
        let id = EventId::pack(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.raw(), (3u64 << 32) | 7);
        assert_eq!(id.to_string(), "ev#7.3");
    }
}

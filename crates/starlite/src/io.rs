//! A simulated I/O subsystem.
//!
//! The paper's single-site experiments assume *parallel I/O processing*:
//! disk reads issued by concurrent transactions do not queue behind each
//! other. [`IoDevice`] models that as its default (unbounded parallelism)
//! while also supporting a bounded number of channels for sensitivity
//! studies. Like [`Cpu`](crate::Cpu), the device is caller-timed: each
//! accepted request returns a completion instant for the caller to schedule.
//!
//! # Example
//!
//! ```
//! use starlite::{IoDevice, SimTime, SimDuration};
//!
//! let mut io: IoDevice<u32> = IoDevice::parallel();
//! let done_at = io.submit(7, SimDuration::from_ticks(20), SimTime::ZERO);
//! assert_eq!(done_at, Some(SimTime::from_ticks(20)));
//! io.complete(SimTime::from_ticks(20));
//! assert_eq!(io.in_flight(), 0);
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A started I/O transfer waiting for a previously queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedIo<T> {
    /// The task whose transfer started.
    pub task: T,
    /// When the transfer completes.
    pub finish_at: SimTime,
}

/// A simulated I/O device with configurable parallelism.
pub struct IoDevice<T> {
    channels: Option<usize>,
    in_flight: usize,
    waiting: VecDeque<(T, SimDuration)>,
    completed: u64,
    total_latency: SimDuration,
}

impl<T> fmt::Debug for IoDevice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoDevice")
            .field("channels", &self.channels)
            .field("in_flight", &self.in_flight)
            .field("waiting", &self.waiting.len())
            .field("completed", &self.completed)
            .finish()
    }
}

impl<T: Copy + fmt::Debug> IoDevice<T> {
    /// Creates a device with unbounded parallelism (the paper's model).
    pub fn parallel() -> Self {
        IoDevice {
            channels: None,
            in_flight: 0,
            waiting: VecDeque::new(),
            completed: 0,
            total_latency: SimDuration::ZERO,
        }
    }

    /// Creates a device that can carry at most `channels` concurrent
    /// transfers; excess requests queue FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn bounded(channels: usize) -> Self {
        assert!(channels > 0, "an I/O device needs at least one channel");
        IoDevice {
            channels: Some(channels),
            ..IoDevice::parallel()
        }
    }

    /// Submits a transfer of duration `latency` for `task`.
    ///
    /// Returns the completion instant if the transfer starts now (the caller
    /// schedules a completion event there), or `None` if it queued behind
    /// busy channels.
    pub fn submit(&mut self, task: T, latency: SimDuration, now: SimTime) -> Option<SimTime> {
        if self.channels.is_some_and(|limit| self.in_flight >= limit) {
            self.waiting.push_back((task, latency));
            return None;
        }
        self.in_flight += 1;
        self.total_latency += latency;
        Some(now + latency)
    }

    /// Reports one transfer completion; returns the next queued transfer
    /// started in its place, if any.
    ///
    /// # Panics
    ///
    /// Panics if no transfer is in flight.
    pub fn complete(&mut self, now: SimTime) -> Option<StartedIo<T>> {
        assert!(self.in_flight > 0, "I/O completion with nothing in flight");
        self.in_flight -= 1;
        self.completed += 1;
        if let Some((task, latency)) = self.waiting.pop_front() {
            self.in_flight += 1;
            self.total_latency += latency;
            return Some(StartedIo {
                task,
                finish_at: now + latency,
            });
        }
        None
    }

    /// Number of transfers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Number of transfers waiting for a channel.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Number of transfers completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Sum of all transfer latencies started so far.
    pub fn total_latency(&self) -> SimDuration {
        self.total_latency
    }
}

impl<T: Copy + fmt::Debug> Default for IoDevice<T> {
    fn default() -> Self {
        IoDevice::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn d(ticks: u64) -> SimDuration {
        SimDuration::from_ticks(ticks)
    }

    #[test]
    fn parallel_device_never_queues() {
        let mut io: IoDevice<u8> = IoDevice::parallel();
        for i in 0..100 {
            assert!(io.submit(i, d(10), t(0)).is_some());
        }
        assert_eq!(io.in_flight(), 100);
        assert_eq!(io.queued(), 0);
    }

    #[test]
    fn bounded_device_queues_fifo() {
        let mut io: IoDevice<u8> = IoDevice::bounded(1);
        assert_eq!(io.submit(1, d(10), t(0)), Some(t(10)));
        assert_eq!(io.submit(2, d(5), t(2)), None);
        assert_eq!(io.submit(3, d(7), t(3)), None);
        let next = io.complete(t(10)).unwrap();
        assert_eq!(next.task, 2);
        assert_eq!(next.finish_at, t(15));
        let next = io.complete(t(15)).unwrap();
        assert_eq!(next.task, 3);
        assert_eq!(io.complete(t(22)), None);
        assert_eq!(io.completed_count(), 3);
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn completing_idle_device_panics() {
        let mut io: IoDevice<u8> = IoDevice::parallel();
        io.complete(t(0));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _: IoDevice<u8> = IoDevice::bounded(0);
    }

    #[test]
    fn latency_accounting() {
        let mut io: IoDevice<u8> = IoDevice::parallel();
        io.submit(1, d(10), t(0));
        io.submit(2, d(20), t(0));
        assert_eq!(io.total_latency(), d(30));
    }
}

//! # starlite — a deterministic discrete-event simulation kernel
//!
//! This crate is the reproduction's stand-in for the *StarLite* concurrent
//! programming kernel the paper's prototyping environment is built on.
//! StarLite provided process control (create / ready / block / terminate)
//! over virtual time; `starlite` provides the same observable semantics as a
//! deterministic discrete-event simulation (DES) kernel:
//!
//! * a logical clock and a cancellable, totally ordered event queue
//!   ([`Scheduler`], [`Engine`]),
//! * a preemptive priority CPU model with inheritance-driven priority
//!   changes ([`cpu::Cpu`]),
//! * a parallel I/O device model ([`io::IoDevice`]),
//! * seeded random processes for workload generation ([`random::RandomSource`]).
//!
//! Determinism is the design centre: every simulation built on this kernel
//! is a pure function of its configuration and seed. Events that share a
//! timestamp are executed in scheduling order (a monotone sequence number
//! breaks ties), and all randomness flows through explicitly seeded
//! generators.
//!
//! # Example
//!
//! ```
//! use starlite::{Engine, Model, Scheduler, SimTime, SimDuration};
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_after(SimDuration::from_ticks(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.scheduler_mut().schedule(SimTime::ZERO, Ev::Tick);
//! engine.run_to_completion(None);
//! assert_eq!(engine.model().fired, 3);
//! assert_eq!(engine.now(), SimTime::from_ticks(20));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod engine;
pub mod event;
pub mod hashing;
pub mod io;
pub mod priority;
pub mod queue;
pub mod random;
pub mod sink;
pub mod time;
pub mod trace;

pub use cpu::{
    Completion, Cpu, CpuJournalEntry, CpuJournalKind, CpuPolicy, CpuToken, Removed, StartedBurst,
};
pub use engine::{Engine, Model, QueueStats, Scheduler};
pub use event::EventId;
pub use hashing::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use io::IoDevice;
pub use priority::Priority;
pub use queue::{HeapQueue, WheelQueue};
pub use random::RandomSource;
pub use sink::{EventSink, NullSink, TeeSink, VecSink};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;

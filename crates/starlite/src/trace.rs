//! A lightweight, optionally enabled event trace.
//!
//! The paper's performance monitor records "the time when each event
//! occurred" per transaction. [`Trace`] is the kernel-level half of that:
//! a bounded, timestamped log that models can write to and tests can
//! inspect. Tracing is off by default so large experiment runs pay nothing.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// A bounded, timestamped record of simulation happenings.
///
/// # Example
///
/// ```
/// use starlite::{Trace, SimTime};
/// let mut trace: Trace<&str> = Trace::enabled(16);
/// trace.record(SimTime::from_ticks(5), "txn 1 blocked");
/// assert_eq!(trace.len(), 1);
/// ```
pub struct Trace<E> {
    entries: VecDeque<(SimTime, E)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl<E: fmt::Debug> fmt::Debug for Trace<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.enabled)
            .field("len", &self.entries.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl<E> Trace<E> {
    /// Creates a disabled trace; [`Trace::record`] becomes a no-op.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// Creates an enabled trace retaining the last `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "an enabled trace needs capacity");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Appends an entry; the oldest entry is evicted when full.
    pub fn record(&mut self, at: SimTime, entry: E) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, entry));
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained `(time, entry)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.entries.iter()
    }
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace: Trace<u32> = Trace::disabled();
        trace.record(SimTime::ZERO, 1);
        assert!(trace.is_empty());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_most_recent() {
        let mut trace: Trace<u32> = Trace::enabled(3);
        for i in 0..5 {
            trace.record(SimTime::from_ticks(i), i as u32);
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped_count(), 2);
        let kept: Vec<u32> = trace.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        let _: Trace<u32> = Trace::enabled(0);
    }
}

//! A lightweight, optionally enabled event trace.
//!
//! The paper's performance monitor records "the time when each event
//! occurred" per transaction. [`Trace`] is the kernel-level half of that:
//! a bounded, timestamped log that models can write to and tests can
//! inspect. Tracing is off by default so large experiment runs pay nothing.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// A bounded, timestamped record of simulation happenings.
///
/// # Example
///
/// ```
/// use starlite::{Trace, SimTime};
/// let mut trace: Trace<&str> = Trace::enabled(16);
/// trace.record(SimTime::from_ticks(5), "txn 1 blocked");
/// assert_eq!(trace.len(), 1);
/// ```
pub struct Trace<E> {
    entries: VecDeque<(SimTime, E)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl<E: fmt::Debug> fmt::Debug for Trace<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.enabled)
            .field("len", &self.entries.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl<E> Trace<E> {
    /// Creates a disabled trace; [`Trace::record`] becomes a no-op.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// Creates an enabled trace retaining the last `capacity` entries.
    ///
    /// `capacity` governs *retention*: once `capacity` entries are held,
    /// each [`Trace::record`] evicts the oldest entry and counts it in
    /// [`Trace::dropped`]. Up-front *preallocation* is deliberately capped
    /// at 4096 slots — a caller asking for a huge retention window (say,
    /// `usize::MAX` for "keep everything") must not commit gigabytes before
    /// a single entry is recorded. Beyond the cap the deque grows on demand
    /// like any `Vec`, so large capacities are still honoured, they just
    /// amortise their allocation instead of paying it eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "an enabled trace needs capacity");
        Trace {
            // Preallocation cap, NOT the retention bound — see above.
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Appends an entry; the oldest entry is evicted when full.
    pub fn record(&mut self, at: SimTime, entry: E) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, entry));
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Alias for [`Trace::dropped`], kept for existing callers.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained `(time, entry)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.entries.iter()
    }
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace: Trace<u32> = Trace::disabled();
        trace.record(SimTime::ZERO, 1);
        assert!(trace.is_empty());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_most_recent() {
        let mut trace: Trace<u32> = Trace::enabled(3);
        for i in 0..5 {
            trace.record(SimTime::from_ticks(i), i as u32);
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped_count(), 2);
        let kept: Vec<u32> = trace.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        let _: Trace<u32> = Trace::enabled(0);
    }

    #[test]
    fn capacity_above_preallocation_cap_still_retained() {
        // Retention is governed by `capacity`, not by the 4096-slot
        // preallocation cap: recording more than 4096 entries into a
        // larger trace must not evict anything.
        let mut trace: Trace<u32> = Trace::enabled(5000);
        for i in 0..5000u32 {
            trace.record(SimTime::from_ticks(i as u64), i);
        }
        assert_eq!(trace.len(), 5000);
        assert_eq!(trace.dropped(), 0);
        // One more wraps: exactly one eviction, oldest first.
        trace.record(SimTime::from_ticks(5000), 5000);
        assert_eq!(trace.len(), 5000);
        assert_eq!(trace.dropped(), 1);
        assert_eq!(trace.iter().next().map(|&(_, e)| e), Some(1));
    }

    #[test]
    fn drop_accounting_matches_wraparound() {
        let mut trace: Trace<u64> = Trace::enabled(4);
        for i in 0..10 {
            trace.record(SimTime::from_ticks(i), i);
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 6);
        assert_eq!(trace.dropped_count(), trace.dropped());
        let kept: Vec<u64> = trace.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_trace_never_drops() {
        let mut trace: Trace<u8> = Trace::disabled();
        for _ in 0..100 {
            trace.record(SimTime::ZERO, 0);
        }
        assert_eq!(trace.dropped(), 0);
        assert!(trace.is_empty());
    }
}

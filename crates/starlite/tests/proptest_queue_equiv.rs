//! Direct `WheelQueue`-vs-`HeapQueue` equivalence.
//!
//! `tests/proptest_scheduler_equiv.rs` checks whichever queue the engine
//! is built with against a flat-list reference; this test removes the
//! engine from the picture and drives both queue types against *each
//! other* through the raw queue API, so the hierarchical wheel (cursor
//! advancement, multi-level cascades, the `early` buffer, occupancy
//! bitmasks, tombstone purges) is pinned to the heap's simple
//! `(time, sequence)` semantics operation by operation.
//!
//! The workload mixes the three regimes the wheel handles differently:
//! dense near-future events (level 0), mid-range events (one cascade),
//! and far-future outliers (multi-level cascades), interleaved with
//! cancel storms heavy enough to trip the periodic tombstone purge and
//! horizon-bounded drains followed by fresh schedules (which is the only
//! way events reach the wheel's `early` buffer).

use proptest::prelude::*;
use starlite::{HeapQueue, SimTime, WheelQueue};

/// One drain step on both queues, asserting identical observations.
/// Returns `false` when both queues were exhausted below the horizon.
fn lockstep_pop(
    wheel: &mut WheelQueue<u32>,
    heap: &mut HeapQueue<u32>,
    horizon: Option<u64>,
) -> Result<bool, TestCaseError> {
    let wt = wheel.next_event_time();
    let ht = heap.next_event_time();
    prop_assert_eq!(wt, ht, "peeked firing times diverge");
    let due = match (wt, horizon) {
        (None, _) => false,
        (Some(t), Some(h)) => t.ticks() <= h,
        (Some(_), None) => true,
    };
    if !due {
        return Ok(false);
    }
    prop_assert_eq!(wheel.pop_next(), heap.pop_next(), "popped events diverge");
    prop_assert_eq!(wheel.now(), heap.now(), "clocks diverge after pop");
    Ok(true)
}

proptest! {
    /// Rounds of schedule / cancel / horizon-bounded drain. Cancel picks
    /// index the *entire* handle history (fired, cancelled and pending
    /// alike), so both slabs see the same mix of live hits and stale
    /// misses and the wheel's purge heuristic fires under load.
    #[test]
    fn wheel_queue_matches_heap_queue(
        rounds in prop::collection::vec(
            (
                prop::collection::vec((0u8..3, any::<u64>()), 0..14),
                prop::collection::vec(any::<u64>(), 0..24),
                0u64..5_000,
            ),
            1..10,
        ),
    ) {
        let mut wheel: WheelQueue<u32> = WheelQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        let mut next_tag: u32 = 0;
        let mut horizon: u64 = 0;

        for (scheds, cancel_picks, horizon_delta) in rounds {
            for (regime, raw) in scheds {
                // Three delay regimes: dense level-0 traffic, mid-range
                // (one cascade), and far-future outliers that land in the
                // top wheel levels and must survive repeated cascades.
                let delta = match regime {
                    0 => raw % 16,
                    1 => raw % 4_096,
                    _ => raw % 10_000_000,
                };
                prop_assert_eq!(wheel.now(), heap.now());
                let at = SimTime::from_ticks(wheel.now().ticks() + delta);
                let tag = next_tag;
                next_tag += 1;
                wheel_ids.push(wheel.schedule(at, tag));
                heap_ids.push(heap.schedule(at, tag));
            }
            for pick in cancel_picks {
                if wheel_ids.is_empty() {
                    break;
                }
                let i = (pick % wheel_ids.len() as u64) as usize;
                prop_assert_eq!(
                    wheel.is_pending(wheel_ids[i]),
                    heap.is_pending(heap_ids[i]),
                );
                prop_assert_eq!(
                    wheel.cancel(wheel_ids[i]),
                    heap.cancel(heap_ids[i]),
                    "cancel outcome diverges for handle {}", i,
                );
            }
            horizon += horizon_delta;
            while lockstep_pop(&mut wheel, &mut heap, Some(horizon))? {}
            prop_assert_eq!(wheel.pending_count(), heap.pending_count());
            prop_assert_eq!(wheel.executed_count(), heap.executed_count());
        }

        // Full drain: every remaining event fires in the same order.
        while lockstep_pop(&mut wheel, &mut heap, None)? {}
        prop_assert_eq!(wheel.pending_count(), 0);
        prop_assert_eq!(heap.pending_count(), 0);
        prop_assert_eq!(wheel.executed_count(), heap.executed_count());

        // Exhausted handles must all be stale in both queues.
        for (&w, &h) in wheel_ids.iter().zip(&heap_ids) {
            prop_assert_eq!(wheel.cancel(w), heap.cancel(h));
        }
    }
}

/// Directed: a horizon-bounded peek cascades the wheel cursor past a gap;
/// scheduling into that gap afterwards lands in the `early` buffer and
/// must still fire before everything in the wheel, in heap order.
#[test]
fn early_buffer_preserves_order() {
    let mut wheel: WheelQueue<u32> = WheelQueue::new();
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    for (at, tag) in [(1_000_000u64, 0u32), (2_000_000, 1)] {
        wheel.schedule(SimTime::from_ticks(at), tag);
        heap.schedule(SimTime::from_ticks(at), tag);
    }
    // Peeking cascades the wheel down to the first pending event.
    assert_eq!(wheel.next_event_time(), heap.next_event_time());
    assert_eq!(wheel.pop_next(), heap.pop_next());
    // Now schedule between the cursor and the remaining far event, plus a
    // same-tick event at the current instant.
    for (delta, tag) in [(0u64, 2u32), (3, 3), (250_000, 4)] {
        let at = SimTime::from_ticks(wheel.now().ticks() + delta);
        wheel.schedule(at, tag);
        heap.schedule(at, tag);
    }
    let mut fired = Vec::new();
    while let Some(t) = wheel.next_event_time() {
        assert_eq!(Some(t), heap.next_event_time());
        let w = wheel.pop_next();
        assert_eq!(w, heap.pop_next());
        fired.push(w.unwrap());
    }
    assert_eq!(fired, vec![2, 3, 4, 1]);
    assert_eq!(heap.pop_next(), None);
}

//! Property-based tests of the simulation kernel.

use proptest::prelude::*;
use starlite::{Cpu, CpuPolicy, Engine, Model, Priority, Scheduler, SimDuration, SimTime};

// ---- engine ordering ----------------------------------------------------

struct Collector {
    fired: Vec<(u64, usize)>,
}

enum Ev {
    Tag(usize),
}

impl Model for Collector {
    type Event = Ev;
    fn handle(&mut self, Ev::Tag(i): Ev, sched: &mut Scheduler<Ev>) {
        self.fired.push((sched.now().ticks(), i));
    }
}

proptest! {
    /// Events fire in (time, scheduling order): sorting the input by
    /// (time, index) must reproduce the firing order exactly.
    #[test]
    fn engine_fires_in_time_then_fifo_order(times in prop::collection::vec(0u64..1_000, 1..64)) {
        let mut engine = Engine::new(Collector { fired: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            engine.scheduler_mut().schedule(SimTime::from_ticks(t), Ev::Tag(i));
        }
        engine.run_to_completion(None);
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort();
        prop_assert_eq!(&engine.model().fired, &expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(1u64..1_000, 1..64),
        cancel_mask in prop::collection::vec(any::<bool>(), 64),
    ) {
        let mut engine = Engine::new(Collector { fired: Vec::new() });
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push(engine.scheduler_mut().schedule(SimTime::from_ticks(t), Ev::Tag(i)));
        }
        let mut kept: Vec<(u64, usize)> = Vec::new();
        for (i, (&t, id)) in times.iter().zip(ids).enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(engine.scheduler_mut().cancel(id));
            } else {
                kept.push((t, i));
            }
        }
        engine.run_to_completion(None);
        kept.sort();
        prop_assert_eq!(&engine.model().fired, &kept);
    }
}

// ---- CPU work conservation ------------------------------------------------

#[derive(Debug, Clone)]
enum CpuOp {
    Submit { task: u8, priority: i64, work: u64 },
    SetPriority { task: u8, priority: i64 },
    Remove { task: u8 },
    AdvanceToCompletion,
}

fn cpu_op_strategy() -> impl Strategy<Value = CpuOp> {
    prop_oneof![
        (0u8..6, -5i64..5, 1u64..50).prop_map(|(task, priority, work)| CpuOp::Submit {
            task,
            priority,
            work
        }),
        (0u8..6, -5i64..5).prop_map(|(task, priority)| CpuOp::SetPriority { task, priority }),
        (0u8..6).prop_map(|task| CpuOp::Remove { task }),
        Just(CpuOp::AdvanceToCompletion),
    ]
}

proptest! {
    /// Whatever the interleaving of submissions, priority changes and
    /// removals, the CPU never loses or invents work: when all pending
    /// bursts complete, total busy time equals the work of completed
    /// bursts plus partial work of removed ones, and it never exceeds the
    /// sum of all submitted work.
    #[test]
    fn cpu_conserves_work(
        policy_priority in any::<bool>(),
        ops in prop::collection::vec(cpu_op_strategy(), 1..40),
    ) {
        let policy = if policy_priority {
            CpuPolicy::PreemptivePriority
        } else {
            CpuPolicy::Fcfs
        };
        let mut cpu: Cpu<u8> = Cpu::new(policy);
        let mut now = SimTime::ZERO;
        // Outstanding completion timers: (finish_at, token).
        let mut timers: Vec<(SimTime, starlite::CpuToken)> = Vec::new();
        let mut submitted: u64 = 0;
        let mut on_cpu: std::collections::HashSet<u8> = std::collections::HashSet::new();

        let drain = |cpu: &mut Cpu<u8>,
                         timers: &mut Vec<(SimTime, starlite::CpuToken)>,
                         now: &mut SimTime,
                         on_cpu: &mut std::collections::HashSet<u8>| {
            while !timers.is_empty() {
                timers.sort_by_key(|&(t, _)| t);
                let (at, token) = timers.remove(0);
                if at > *now {
                    *now = at;
                }
                match cpu.complete(token, at) {
                    starlite::Completion::Stale => {}
                    starlite::Completion::Finished { task, next } => {
                        on_cpu.remove(&task);
                        if let Some(b) = next {
                            timers.push((b.finish_at, b.token));
                        }
                    }
                }
            }
        };

        for op in ops {
            match op {
                CpuOp::Submit { task, priority, work } => {
                    if on_cpu.contains(&task) {
                        continue;
                    }
                    on_cpu.insert(task);
                    submitted += work;
                    if let Some(b) = cpu.submit(
                        task,
                        Priority::new(priority),
                        SimDuration::from_ticks(work),
                        now,
                    ) {
                        timers.push((b.finish_at, b.token));
                    }
                }
                CpuOp::SetPriority { task, priority } => {
                    if let Some(b) = cpu.set_priority(task, Priority::new(priority), now) {
                        timers.push((b.finish_at, b.token));
                    }
                }
                CpuOp::Remove { task } => {
                    match cpu.remove(task, now) {
                        starlite::Removed::NotPresent => {}
                        starlite::Removed::WasReady => {
                            on_cpu.remove(&task);
                        }
                        starlite::Removed::WasRunning { next } => {
                            on_cpu.remove(&task);
                            if let Some(b) = next {
                                timers.push((b.finish_at, b.token));
                            }
                        }
                    }
                }
                CpuOp::AdvanceToCompletion => {
                    drain(&mut cpu, &mut timers, &mut now, &mut on_cpu);
                }
            }
            // Time moves forward a little between operations.
            now += SimDuration::from_ticks(1);
        }
        drain(&mut cpu, &mut timers, &mut now, &mut on_cpu);
        prop_assert!(cpu.running_task().is_none(), "CPU should drain");
        prop_assert_eq!(cpu.ready_len(), 0, "ready queue should drain");
        prop_assert!(
            cpu.busy_time().ticks() <= submitted,
            "busy {} exceeds submitted {}",
            cpu.busy_time().ticks(),
            submitted
        );
    }
}

//! Edge-case tests of the kernel's public API beyond the module unit
//! tests: pending counts, horizon semantics, and bounded-I/O refills.

use starlite::{Engine, IoDevice, Model, Scheduler, SimDuration, SimTime};

struct Sink;

enum Ev {
    Nop,
}

impl Model for Sink {
    type Event = Ev;
    fn handle(&mut self, _ev: Ev, _sched: &mut Scheduler<Ev>) {}
}

#[test]
fn pending_count_tracks_schedule_cancel_and_fire() {
    let mut engine = Engine::new(Sink);
    let s = engine.scheduler_mut();
    let a = s.schedule(SimTime::from_ticks(10), Ev::Nop);
    let b = s.schedule(SimTime::from_ticks(20), Ev::Nop);
    s.schedule(SimTime::from_ticks(30), Ev::Nop);
    assert_eq!(s.pending_count(), 3);
    assert!(s.is_pending(a));
    assert!(s.cancel(b));
    assert_eq!(s.pending_count(), 2);
    assert!(!s.is_pending(b));
    engine.step();
    let s = engine.scheduler_mut();
    assert_eq!(s.pending_count(), 1);
    assert!(!s.is_pending(a));
    assert_eq!(s.executed_count(), 1);
}

#[test]
fn run_until_exact_horizon_then_nothing() {
    let mut engine = Engine::new(Sink);
    engine
        .scheduler_mut()
        .schedule(SimTime::from_ticks(5), Ev::Nop);
    assert_eq!(engine.run_until(SimTime::from_ticks(4)), 0);
    assert_eq!(
        engine.now(),
        SimTime::ZERO,
        "clock holds until an event fires"
    );
    assert_eq!(engine.run_until(SimTime::from_ticks(5)), 1);
    assert_eq!(engine.run_until(SimTime::MAX), 0);
}

#[test]
fn run_to_completion_respects_event_cap() {
    struct Forever;
    impl Model for Forever {
        type Event = Ev;
        fn handle(&mut self, _ev: Ev, sched: &mut Scheduler<Ev>) {
            sched.schedule_after(SimDuration::from_ticks(1), Ev::Nop);
        }
    }
    let mut engine = Engine::new(Forever);
    engine.scheduler_mut().schedule(SimTime::ZERO, Ev::Nop);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run_to_completion(Some(100));
    }));
    assert!(result.is_err(), "the divergence guard must trip");
}

#[test]
fn bounded_io_chains_refills_in_fifo_order() {
    let mut io: IoDevice<u8> = IoDevice::bounded(2);
    let now = SimTime::ZERO;
    assert!(io.submit(1, SimDuration::from_ticks(10), now).is_some());
    assert!(io.submit(2, SimDuration::from_ticks(10), now).is_some());
    assert!(io.submit(3, SimDuration::from_ticks(10), now).is_none());
    assert!(io.submit(4, SimDuration::from_ticks(10), now).is_none());
    assert_eq!(io.queued(), 2);
    let first = io.complete(SimTime::from_ticks(10)).expect("refill");
    assert_eq!(first.task, 3);
    let second = io.complete(SimTime::from_ticks(10)).expect("refill");
    assert_eq!(second.task, 4);
    assert_eq!(io.queued(), 0);
    assert_eq!(io.in_flight(), 2);
}

//! Equivalence test for the heap-based CPU ready queue.
//!
//! `RefCpu` below is a port of the original `Cpu` implementation: a flat
//! `Vec` ready queue scanned linearly for the best entry, with
//! FIFO-within-priority resolved by a per-submission seniority number. The
//! heap rewrite must agree with it on every observable: who is dispatched
//! and when each burst would finish, preemption and dispatch counts, busy
//! time, and the ready-queue length — under randomized interleavings of
//! submissions, completions, priority changes (the priority-inheritance
//! path), removals, and stale completion tokens, for both policies.

use proptest::prelude::*;
use starlite::{Completion, Cpu, CpuPolicy, CpuToken, Priority, Removed, SimDuration, SimTime};

// ---- reference implementation (original linear-scan ready queue) --------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefBurst {
    task: u8,
    token: u64,
    finish_at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefCompletion {
    Stale,
    Finished { task: u8, next: Option<RefBurst> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefRemoved {
    WasRunning { next: Option<RefBurst> },
    WasReady,
    NotPresent,
}

#[derive(Debug)]
struct RefRunning {
    task: u8,
    priority: Priority,
    token: u64,
    seq: u64,
    started: SimTime,
    remaining: SimDuration,
}

#[derive(Debug)]
struct RefReady {
    task: u8,
    priority: Priority,
    remaining: SimDuration,
    seq: u64,
}

struct RefCpu {
    policy: CpuPolicy,
    running: Option<RefRunning>,
    ready: Vec<RefReady>,
    next_token: u64,
    next_seq: u64,
    busy: SimDuration,
    dispatches: u64,
    preemptions: u64,
}

impl RefCpu {
    fn new(policy: CpuPolicy) -> Self {
        RefCpu {
            policy,
            running: None,
            ready: Vec::new(),
            next_token: 0,
            next_seq: 0,
            busy: SimDuration::ZERO,
            dispatches: 0,
            preemptions: 0,
        }
    }

    fn submit(
        &mut self,
        task: u8,
        priority: Priority,
        work: SimDuration,
        now: SimTime,
    ) -> Option<RefBurst> {
        assert!(!work.is_zero());
        assert!(!self.contains(task));
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.running {
            None => Some(self.start(task, priority, work, seq, now)),
            Some(run) => {
                if self.policy == CpuPolicy::PreemptivePriority && priority > run.priority {
                    self.preempt_running(now);
                    Some(self.start(task, priority, work, seq, now))
                } else {
                    self.ready.push(RefReady {
                        task,
                        priority,
                        remaining: work,
                        seq,
                    });
                    None
                }
            }
        }
    }

    fn complete(&mut self, token: u64, now: SimTime) -> RefCompletion {
        let is_current = self.running.as_ref().is_some_and(|run| run.token == token);
        if !is_current {
            return RefCompletion::Stale;
        }
        let run = self.running.take().expect("checked above");
        assert_eq!(now, run.started + run.remaining);
        self.busy += run.remaining;
        let task = run.task;
        let next = self.dispatch_next(now);
        RefCompletion::Finished { task, next }
    }

    fn set_priority(&mut self, task: u8, priority: Priority, now: SimTime) -> Option<RefBurst> {
        if self.policy == CpuPolicy::Fcfs {
            if let Some(run) = &mut self.running {
                if run.task == task {
                    run.priority = priority;
                    return None;
                }
            }
            if let Some(entry) = self.ready.iter_mut().find(|e| e.task == task) {
                entry.priority = priority;
            }
            return None;
        }
        let runs_task = self.running.as_ref().is_some_and(|run| run.task == task);
        if runs_task {
            self.running.as_mut().expect("checked above").priority = priority;
            let must_yield = self
                .best_ready_index()
                .is_some_and(|best| self.ready[best].priority > priority);
            if must_yield {
                self.preempt_running(now);
                return self.dispatch_next(now);
            }
            return None;
        }
        if let Some(idx) = self.ready.iter().position(|e| e.task == task) {
            self.ready[idx].priority = priority;
            let running_priority = self
                .running
                .as_ref()
                .map(|run| run.priority)
                .expect("ready task with idle CPU");
            if priority > running_priority {
                self.preempt_running(now);
                return self.dispatch_next(now);
            }
        }
        None
    }

    fn remove(&mut self, task: u8, now: SimTime) -> RefRemoved {
        let runs_task = self.running.as_ref().is_some_and(|run| run.task == task);
        if runs_task {
            let run = self.running.take().expect("checked above");
            let elapsed = now.since(run.started);
            self.busy += elapsed.min(run.remaining);
            let next = self.dispatch_next(now);
            return RefRemoved::WasRunning { next };
        }
        if let Some(idx) = self.ready.iter().position(|e| e.task == task) {
            self.ready.swap_remove(idx);
            return RefRemoved::WasReady;
        }
        RefRemoved::NotPresent
    }

    fn contains(&self, task: u8) -> bool {
        self.running.as_ref().is_some_and(|r| r.task == task)
            || self.ready.iter().any(|e| e.task == task)
    }

    fn running_task(&self) -> Option<u8> {
        self.running.as_ref().map(|r| r.task)
    }

    fn start(
        &mut self,
        task: u8,
        priority: Priority,
        remaining: SimDuration,
        seq: u64,
        now: SimTime,
    ) -> RefBurst {
        let token = self.next_token;
        self.next_token += 1;
        self.dispatches += 1;
        self.running = Some(RefRunning {
            task,
            priority,
            token,
            seq,
            started: now,
            remaining,
        });
        RefBurst {
            task,
            token,
            finish_at: now + remaining,
        }
    }

    fn preempt_running(&mut self, now: SimTime) {
        let run = self.running.take().expect("preempt with idle CPU");
        let elapsed = now.since(run.started);
        self.busy += elapsed.min(run.remaining);
        self.preemptions += 1;
        self.ready.push(RefReady {
            task: run.task,
            priority: run.priority,
            remaining: run.remaining.saturating_sub(elapsed),
            seq: run.seq,
        });
    }

    fn dispatch_next(&mut self, now: SimTime) -> Option<RefBurst> {
        let idx = self.best_ready_index()?;
        let entry = self.ready.swap_remove(idx);
        if entry.remaining.is_zero() {
            // Preempted at its exact finish instant: run a zero-length
            // burst so the completion still flows through the caller.
            let token = self.next_token;
            self.next_token += 1;
            self.dispatches += 1;
            self.running = Some(RefRunning {
                task: entry.task,
                priority: entry.priority,
                token,
                seq: entry.seq,
                started: now,
                remaining: SimDuration::ZERO,
            });
            return Some(RefBurst {
                task: entry.task,
                token,
                finish_at: now,
            });
        }
        Some(self.start(entry.task, entry.priority, entry.remaining, entry.seq, now))
    }

    fn best_ready_index(&self) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.ready.len() {
            let better = match self.policy {
                CpuPolicy::PreemptivePriority => {
                    let (a, b) = (&self.ready[i], &self.ready[best]);
                    a.priority > b.priority || (a.priority == b.priority && a.seq < b.seq)
                }
                CpuPolicy::Fcfs => self.ready[i].seq < self.ready[best].seq,
            };
            if better {
                best = i;
            }
        }
        Some(best)
    }
}

// ---- lock-step driver ---------------------------------------------------

/// Currently running burst as (heap token, reference token, finish time).
type Live = (CpuToken, u64, SimTime);

/// Asserts both `Option<StartedBurst>`-likes describe the same dispatch
/// and returns the new live burst, folding the displaced one into `stale`.
fn sync_dispatch(
    real: Option<starlite::StartedBurst<u8>>,
    reference: Option<RefBurst>,
    live: &mut Option<Live>,
    stale: &mut Vec<(CpuToken, u64)>,
) -> Result<(), TestCaseError> {
    match (real, reference) {
        (None, None) => {}
        (Some(r), Some(m)) => {
            prop_assert_eq!(r.task, m.task);
            prop_assert_eq!(r.finish_at, m.finish_at);
            prop_assert_eq!(r.token.raw(), m.token);
            if let Some((rt, mt, _)) = live.take() {
                stale.push((rt, mt));
            }
            *live = Some((r.token, m.token, r.finish_at));
        }
        (r, m) => prop_assert!(false, "dispatch diverged: heap {r:?} vs reference {m:?}"),
    }
    Ok(())
}

fn check_counters(cpu: &Cpu<u8>, reference: &RefCpu) -> Result<(), TestCaseError> {
    prop_assert_eq!(cpu.running_task(), reference.running_task());
    prop_assert_eq!(cpu.ready_len(), reference.ready.len());
    prop_assert_eq!(cpu.dispatch_count(), reference.dispatches);
    prop_assert_eq!(cpu.preemption_count(), reference.preemptions);
    prop_assert_eq!(cpu.busy_time(), reference.busy);
    Ok(())
}

/// One op: `(kind, task, priority level, amount)`. Kinds: 0 submit,
/// 1 complete running burst, 2 set_priority, 3 remove, 4 advance time
/// (clamped to the running burst's finish instant), 5 stale completion.
type Op = (u8, u8, u8, u64);

fn drive(policy: CpuPolicy, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut cpu: Cpu<u8> = Cpu::new(policy);
    let mut reference = RefCpu::new(policy);
    let mut now = SimTime::ZERO;
    let mut live: Option<Live> = None;
    let mut stale: Vec<(CpuToken, u64)> = Vec::new();

    for (kind, task, level, amount) in ops {
        let priority = Priority::new(level as i64);
        match kind {
            0 => {
                if cpu.contains(task) {
                    prop_assert!(reference.contains(task));
                    continue;
                }
                prop_assert!(!reference.contains(task));
                let work = SimDuration::from_ticks(amount);
                let r = cpu.submit(task, priority, work, now);
                let m = reference.submit(task, priority, work, now);
                sync_dispatch(r, m, &mut live, &mut stale)?;
            }
            1 => {
                let Some((rt, mt, finish_at)) = live.take() else {
                    continue;
                };
                now = finish_at;
                let r = cpu.complete(rt, now);
                let m = reference.complete(mt, now);
                match (r, m) {
                    (
                        Completion::Finished { task: rtask, next },
                        RefCompletion::Finished {
                            task: mtask,
                            next: mnext,
                        },
                    ) => {
                        prop_assert_eq!(rtask, mtask);
                        stale.push((rt, mt));
                        sync_dispatch(next, mnext, &mut live, &mut stale)?;
                    }
                    (r, m) => prop_assert!(false, "completion diverged: {r:?} vs {m:?}"),
                }
            }
            2 => {
                let r = cpu.set_priority(task, priority, now);
                let m = reference.set_priority(task, priority, now);
                sync_dispatch(r, m, &mut live, &mut stale)?;
            }
            3 => {
                let r = cpu.remove(task, now);
                let m = reference.remove(task, now);
                match (r, m) {
                    (Removed::WasRunning { next }, RefRemoved::WasRunning { next: mnext }) => {
                        // The removed burst's completion token is now dead.
                        if let Some((rt, mt, _)) = live.take() {
                            stale.push((rt, mt));
                        }
                        sync_dispatch(next, mnext, &mut live, &mut stale)?;
                    }
                    (Removed::WasReady, RefRemoved::WasReady) => {}
                    (Removed::NotPresent, RefRemoved::NotPresent) => {}
                    (r, m) => prop_assert!(false, "removal diverged: {r:?} vs {m:?}"),
                }
            }
            4 => {
                // Advance time, but never past the running burst's finish
                // instant (its completion event would have fired first).
                // Reaching it exactly sets up zero-remaining preemptions.
                let target = now + SimDuration::from_ticks(amount);
                now = match live {
                    Some((_, _, finish_at)) => target.min(finish_at),
                    None => target,
                };
            }
            _ => {
                if stale.is_empty() {
                    continue;
                }
                let (rt, mt) = stale[(amount as usize) % stale.len()];
                prop_assert_eq!(cpu.complete(rt, now), Completion::Stale);
                prop_assert_eq!(reference.complete(mt, now), RefCompletion::Stale);
            }
        }
        check_counters(&cpu, &reference)?;
    }

    // Drain: complete whatever is running until the CPU idles, confirming
    // the full ready queue unwinds in the same order on both sides.
    while let Some((rt, mt, finish_at)) = live.take() {
        now = finish_at;
        let r = cpu.complete(rt, now);
        let m = reference.complete(mt, now);
        match (r, m) {
            (
                Completion::Finished { task: rtask, next },
                RefCompletion::Finished {
                    task: mtask,
                    next: mnext,
                },
            ) => {
                prop_assert_eq!(rtask, mtask);
                sync_dispatch(next, mnext, &mut live, &mut stale)?;
            }
            (r, m) => prop_assert!(false, "drain diverged: {r:?} vs {m:?}"),
        }
        check_counters(&cpu, &reference)?;
    }
    prop_assert_eq!(cpu.running_task(), None);
    prop_assert_eq!(cpu.ready_len(), 0);
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..6, 0u8..6, 0u8..8, 1u64..40), 1..150)
}

proptest! {
    #[test]
    fn heap_cpu_matches_linear_scan_preemptive(ops in op_strategy()) {
        drive(CpuPolicy::PreemptivePriority, ops)?;
    }

    #[test]
    fn heap_cpu_matches_linear_scan_fcfs(ops in op_strategy()) {
        drive(CpuPolicy::Fcfs, ops)?;
    }
}

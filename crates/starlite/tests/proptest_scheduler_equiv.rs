//! Model-based equivalence test for the slab-indexed event queue.
//!
//! The slab `Scheduler` (slot-reusing, generation-tagged handles, lazy
//! tombstone deletion) must be observationally identical to the simple
//! semantics of the original implementation: a flat list of pending events
//! fired in `(time, scheduling order)`, where cancelling an unfired event
//! removes it, cancelling a fired or already-cancelled event is a `false`
//! no-op, and a handle can never affect any event but the one it was
//! issued for — even after its slot has been recycled many times.
//!
//! The reference model below never reuses handles, so any slot/generation
//! aliasing bug in the slab shows up as a divergence.

use proptest::prelude::*;
use starlite::{Engine, EventId, Model, Scheduler, SimTime};

/// Records `(firing time, tag)` pairs in execution order.
struct Recorder {
    fired: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;

    fn handle(&mut self, tag: u32, sched: &mut Scheduler<u32>) {
        self.fired.push((sched.now().ticks(), tag));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefState {
    Alive,
    Cancelled,
    Fired,
}

/// Reference event queue: an append-only list scanned linearly. Handles
/// are plain indices and are never recycled.
struct RefSched {
    /// `(firing time, tag, state)`; list order is scheduling order.
    events: Vec<(u64, u32, RefState)>,
    fired: Vec<(u64, u32)>,
    executed: u64,
}

impl RefSched {
    fn new() -> Self {
        RefSched {
            events: Vec::new(),
            fired: Vec::new(),
            executed: 0,
        }
    }

    fn schedule(&mut self, at: u64, tag: u32) -> usize {
        self.events.push((at, tag, RefState::Alive));
        self.events.len() - 1
    }

    fn is_pending(&self, handle: usize) -> bool {
        self.events[handle].2 == RefState::Alive
    }

    fn cancel(&mut self, handle: usize) -> bool {
        if self.events[handle].2 == RefState::Alive {
            self.events[handle].2 = RefState::Cancelled;
            true
        } else {
            false
        }
    }

    fn pending_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.2 == RefState::Alive)
            .count()
    }

    /// Fires all alive events with `at <= horizon` in `(time, scheduling
    /// order)`: the first index with the minimal time is the next event.
    fn run_until(&mut self, horizon: u64) {
        loop {
            let next = self
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| e.2 == RefState::Alive && e.0 <= horizon)
                .min_by_key(|(i, e)| (e.0, *i))
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            self.events[i].2 = RefState::Fired;
            self.fired.push((self.events[i].0, self.events[i].1));
            self.executed += 1;
        }
    }
}

proptest! {
    /// Rounds of interleaved schedule / cancel / partial-drain against the
    /// reference model. Cancels target random handles over the *entire*
    /// history — including fired and already-cancelled events whose slots
    /// the slab has long since recycled — so generation-tag aliasing would
    /// cancel the wrong event and diverge from the reference.
    #[test]
    fn slab_scheduler_matches_reference_model(
        rounds in prop::collection::vec(
            (
                prop::collection::vec(0u64..50, 0..12),
                prop::collection::vec(any::<u64>(), 0..16),
                0u64..120,
            ),
            1..8,
        ),
    ) {
        let mut engine = Engine::new(Recorder { fired: Vec::new() });
        let mut reference = RefSched::new();
        let mut ids: Vec<EventId> = Vec::new();
        let mut handles: Vec<usize> = Vec::new();
        let mut next_tag: u32 = 0;
        let mut horizon: u64 = 0;

        for (deltas, cancel_picks, horizon_delta) in rounds {
            for delta in deltas {
                let at = engine.now().ticks() + delta;
                let tag = next_tag;
                next_tag += 1;
                ids.push(engine.scheduler_mut().schedule(SimTime::from_ticks(at), tag));
                handles.push(reference.schedule(at, tag));
            }
            for pick in cancel_picks {
                if ids.is_empty() {
                    break;
                }
                let i = (pick % ids.len() as u64) as usize;
                prop_assert_eq!(
                    engine.scheduler_mut().is_pending(ids[i]),
                    reference.is_pending(handles[i]),
                );
                prop_assert_eq!(
                    engine.scheduler_mut().cancel(ids[i]),
                    reference.cancel(handles[i]),
                );
            }
            horizon += horizon_delta;
            engine.run_until(SimTime::from_ticks(horizon));
            reference.run_until(horizon);
            prop_assert_eq!(&engine.model().fired, &reference.fired);
            prop_assert_eq!(
                engine.scheduler_mut().pending_count(),
                reference.pending_count(),
            );
        }

        engine.run_to_completion(None);
        reference.run_until(u64::MAX);
        prop_assert_eq!(&engine.model().fired, &reference.fired);
        prop_assert_eq!(engine.scheduler_mut().executed_count(), reference.executed);

        // Every event has fired or been cancelled; no handle may still
        // cancel anything, no matter how its slot was recycled.
        for (&id, &h) in ids.iter().zip(&handles) {
            prop_assert!(!engine.scheduler_mut().cancel(id));
            prop_assert!(!reference.cancel(h));
        }
    }
}

/// Directed regression: a freed slot is recycled by a new event; the old
/// handle (same slot, older generation) must not cancel the new occupant.
#[test]
fn recycled_slot_rejects_stale_handle() {
    let mut engine = Engine::new(Recorder { fired: Vec::new() });
    let old = engine.scheduler_mut().schedule(SimTime::from_ticks(5), 1);
    assert!(engine.scheduler_mut().cancel(old));
    // The slab reuses the freed slot for the replacement event.
    let replacement = engine.scheduler_mut().schedule(SimTime::from_ticks(7), 2);
    assert!(
        !engine.scheduler_mut().cancel(old),
        "stale handle must miss"
    );
    assert!(engine.scheduler_mut().is_pending(replacement));
    engine.run_to_completion(None);
    assert_eq!(engine.model().fired, vec![(7, 2)]);
    assert!(!engine.scheduler_mut().cancel(replacement));
}

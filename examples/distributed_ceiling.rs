//! Global versus local ceiling management across communication delays —
//! the §4 comparison, in miniature.
//!
//! ```sh
//! cargo run --release --example distributed_ceiling
//! ```

use rtlock::distributed::{CeilingArchitecture, DistributedConfig, DistributedSimulator};
use rtlock::prelude::*;

fn main() {
    let catalog = Catalog::new(90, 3, Placement::FullyReplicated);
    let workload = WorkloadSpec::builder()
        .txn_count(300)
        .mean_interarrival(SimDuration::from_ticks(1_600))
        .size(SizeDistribution::Uniform { min: 2, max: 6 })
        .read_only_fraction(0.5)
        .write_fraction(0.5)
        .deadline(12.0, SimDuration::from_ticks(1_000))
        .build();

    println!(
        "{:>6} {:>8} {:>10} {:>9} {:>10}",
        "delay", "arch", "thrpt", "%missed", "messages"
    );
    for delay_ticks in [0u64, 500, 1_000, 2_000] {
        for arch in [
            CeilingArchitecture::LocalReplicated,
            CeilingArchitecture::GlobalManager,
        ] {
            let config = DistributedConfig::builder()
                .architecture(arch)
                .comm_delay(SimDuration::from_ticks(delay_ticks))
                .cpu_per_object(SimDuration::from_ticks(1_000))
                .apply_cost(SimDuration::from_ticks(100))
                .build();
            let report = DistributedSimulator::new(config, catalog.clone(), &workload).run(11);
            check_conflict_serializable(report.monitor.history())
                .expect("distributed histories must be serialisable per copy");
            println!(
                "{:>6} {:>8} {:>10.0} {:>9.1} {:>10}",
                delay_ticks,
                arch.label(),
                report.stats.throughput,
                report.stats.pct_missed,
                report.remote_messages
            );
        }
    }
    println!("\nlocal ceiling keeps the critical path free of the network;");
    println!("the global manager pays two messages per lock and 2PC at commit.");
}

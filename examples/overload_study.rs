//! Overload dynamics over time: what happens when a burst of transactions
//! hits a loaded real-time database — the "crisis" situation the paper's
//! §3.3 argues protocols must be designed for ("when a crisis occurs and
//! the database system is under pressure it is precisely when making a
//! few extra deadlines could be most important").
//!
//! Runs the priority ceiling protocol and plain 2PL through the same
//! load ramp and plots per-window miss percentages over virtual time.
//!
//! ```sh
//! cargo run --release --example overload_study
//! ```

use monitor::plot::{render, Series};
use rtlock::prelude::*;

fn main() {
    let catalog = Catalog::new(120, 1, Placement::SingleSite);
    // A steady stream plus a mid-run burst: a second wave of transactions
    // with tight deadlines arrives in the middle third of the run.
    let steady = WorkloadSpec::builder()
        .txn_count(300)
        .mean_interarrival(SimDuration::from_ticks(16_000))
        .size(SizeDistribution::Fixed(8))
        .write_fraction(0.5)
        .deadline(5.0, SimDuration::from_ticks(1_500))
        .build();

    let mut series = Vec::new();
    for kind in [ProtocolKind::PriorityCeiling, ProtocolKind::TwoPhaseLocking] {
        let config = SingleSiteConfig::builder()
            .protocol(kind)
            .cpu_per_object(SimDuration::from_ticks(1_000))
            .io_per_object(SimDuration::from_ticks(500))
            .restart_victims(false)
            .timeline_window(SimDuration::from_ticks(200_000))
            .build();
        // Build the scenario by hand: the steady stream plus a burst.
        let cat = catalog.clone();
        let mut txns = workload::Generator::new(&steady, &cat).generate(3);
        let burst_base = txns.len() as u64;
        for i in 0..120u64 {
            let arrival = SimTime::from_ticks(1_500_000 + i * 2_500);
            txns.push(TxnSpec::new(
                TxnId(burst_base + i),
                arrival,
                vec![],
                (0..8u32)
                    .map(|k| ObjectId(((i as u32 * 13) + k * 7) % 120))
                    .collect(),
                arrival + SimDuration::from_ticks(45_000),
                SiteId(0),
            ));
        }
        let report = run_transactions(config, &cat, txns);
        let timeline = report.monitor.timeline().expect("enabled");
        println!(
            "{:<24} committed={} missed={} ({:.1}%)",
            format!("{kind:?}"),
            report.stats.committed,
            report.stats.missed,
            report.stats.pct_missed
        );
        series.push(Series::new(
            kind.label().to_string(),
            timeline.miss_pct_series(),
        ));
    }

    println!("\n%missed per 200ms window (burst arrives around window 8):\n");
    print!("{}", render(&series, 60, 14));
    println!("\nThe ceiling protocol sheds the burst with fewer misses and");
    println!("recovers once it passes; 2PL's deadlock losses amplify the spike.");
}

//! Compare every synchronisation protocol on the same workload — the
//! experiment style of the paper's §3.3, in miniature.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use rtlock::prelude::*;

fn main() {
    let catalog = Catalog::new(200, 1, Placement::SingleSite);
    let size = 16u32;
    let workload = WorkloadSpec::builder()
        .txn_count(400)
        .mean_interarrival(SimDuration::from_ticks(
            (size as u64 * 1_000 * 10) / 7, // ~0.7 CPU utilisation
        ))
        .size(SizeDistribution::Fixed(size))
        .write_fraction(0.5)
        .deadline(5.0, SimDuration::from_ticks(1_500))
        .build();

    println!(
        "{:<28} {:>10} {:>9} {:>10} {:>10}",
        "protocol", "thrpt", "%missed", "deadlocks", "blocked(ms)"
    );
    for kind in ProtocolKind::all() {
        let config = SingleSiteConfig::builder()
            .protocol(kind)
            .cpu_per_object(SimDuration::from_ticks(1_000))
            .io_per_object(SimDuration::from_ticks(500))
            .restart_victims(false)
            .build();
        let sim = Simulator::new(config, catalog.clone(), &workload);
        // Average over a few seeds, as the paper averages over runs.
        let seeds = 5;
        let (mut thr, mut miss, mut dl, mut blocked) = (0.0, 0.0, 0u64, 0.0);
        for seed in 0..seeds {
            let report = sim.run(seed);
            check_conflict_serializable(report.monitor.history())
                .expect("every protocol must produce serialisable histories");
            thr += report.stats.throughput;
            miss += report.stats.pct_missed;
            dl += report.deadlocks;
            blocked += report.stats.mean_blocked_ticks;
        }
        let n = seeds as f64;
        println!(
            "{:<28} {:>10.0} {:>9.2} {:>10.1} {:>10.2}",
            format!("{kind:?} ({})", kind.label()),
            thr / n,
            miss / n,
            dl as f64 / n,
            blocked / n / 1_000.0
        );
    }
}

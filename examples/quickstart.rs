//! Quickstart: run one single-site real-time database simulation under
//! the priority ceiling protocol and print the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rtlock::prelude::*;

fn main() {
    // A 200-object database at one site (the paper's §3 setting).
    let catalog = Catalog::new(200, 1, Placement::SingleSite);

    // Heavy load: 400 update transactions of 8 objects each, arriving so
    // that the CPU runs at ~70 % utilisation; deadlines are proportional
    // to transaction size and the earliest deadline gets the highest
    // priority.
    let workload = WorkloadSpec::builder()
        .txn_count(400)
        .mean_interarrival(SimDuration::from_ticks(8_000_000 / 700))
        .size(SizeDistribution::Fixed(8))
        .write_fraction(0.5)
        .deadline(5.0, SimDuration::from_ticks(1_500))
        .build();

    let config = SingleSiteConfig::builder()
        .protocol(ProtocolKind::PriorityCeiling)
        .cpu_per_object(SimDuration::from_ticks(1_000))
        .io_per_object(SimDuration::from_ticks(500))
        .build();

    let report = Simulator::new(config, catalog, &workload).run(42);

    println!("protocol          : priority ceiling (the paper's `C`)");
    println!("processed         : {}", report.stats.processed);
    println!("committed         : {}", report.stats.committed);
    println!(
        "deadline missed   : {} ({:.1} %)",
        report.stats.missed, report.stats.pct_missed
    );
    println!(
        "throughput        : {:.0} objects/second",
        report.stats.throughput
    );
    println!(
        "mean response     : {:.1} ms",
        report.stats.mean_response_ticks / 1_000.0
    );
    println!(
        "mean blocked      : {:.1} ms",
        report.stats.mean_blocked_ticks / 1_000.0
    );
    println!("ceiling blocks    : {}", report.ceiling_blocks);
    println!(
        "deadlocks         : {} (the ceiling protocol never deadlocks)",
        report.deadlocks
    );

    // The committed history is conflict serialisable — verify it.
    check_conflict_serializable(report.monitor.history()).expect("history must be serialisable");
    check_store_integrity(&report);
    println!("serialisability   : verified");
}

//! The paper's motivating application: distributed radar tracking.
//!
//! Three radar stations each maintain their own tracks (primary copies)
//! with periodic update transactions, while aperiodic queries read a
//! temporally consistent picture from their local replicas. The local
//! ceiling manager with replication keeps every site's critical path free
//! of network delays; committed track updates propagate asynchronously.
//!
//! ```sh
//! cargo run --release --example tracking
//! ```

use rtdb::ObjectId;
use rtlock::distributed::{CeilingArchitecture, DistributedConfig, DistributedSimulator};
use rtlock::prelude::*;

fn main() {
    // 30 tracks per station, fully replicated across 3 stations.
    let sites = 3u8;
    let tracks_per_site = 30u32;
    let catalog = Catalog::new(
        tracks_per_site * sites as u32,
        sites,
        Placement::FullyReplicated,
    );

    // Each station refreshes five of its own tracks every scan (10 ms
    // period, deadline = period), for 50 scans.
    let mut builder = WorkloadSpec::builder()
        // A light aperiodic query stream on top of the periodic load.
        .txn_count(150)
        .mean_interarrival(SimDuration::from_ticks(4_000))
        .size(SizeDistribution::Uniform { min: 2, max: 5 })
        .read_only_fraction(1.0)
        .deadline(12.0, SimDuration::from_ticks(1_000));
    for s in 0..sites {
        // Station `s` owns objects with id % sites == s (round-robin
        // primaries); refresh its first five tracks each scan.
        let my_tracks: Vec<ObjectId> = (0..tracks_per_site * sites as u32)
            .map(ObjectId)
            .filter(|o| catalog.primary_site(*o) == SiteId(s))
            .take(5)
            .collect();
        builder = builder.periodic(PeriodicTask::new(
            SimDuration::from_millis(10),
            vec![],
            my_tracks,
            SiteId(s),
            50,
        ));
    }
    let workload = builder.build();

    let config = DistributedConfig::builder()
        .architecture(CeilingArchitecture::LocalReplicated)
        .comm_delay(SimDuration::from_ticks(500))
        .cpu_per_object(SimDuration::from_ticks(1_000))
        .apply_cost(SimDuration::from_ticks(100))
        .build();

    let report = DistributedSimulator::new(config, catalog, &workload).run(7);

    println!("tracking scenario : 3 stations, periodic track updates + queries");
    println!("processed         : {}", report.stats.processed);
    println!("committed         : {}", report.stats.committed);
    println!(
        "deadline missed   : {} ({:.1} %)",
        report.stats.missed, report.stats.pct_missed
    );
    println!(
        "update messages   : {} across the network",
        report.remote_messages
    );

    // Every station converged to the same track picture once propagation
    // drained (single-writer per track guarantees this).
    let reference = &report.stores[0];
    for (i, store) in report.stores.iter().enumerate() {
        let lagging = reference
            .iter()
            .filter(|(id, obj)| store.read(*id).version != obj.version)
            .count();
        println!("station {i}        : {lagging} tracks differ from station 0");
    }
    check_conflict_serializable(report.monitor.history()).expect("history must be serialisable");
    println!("serialisability   : verified");
}

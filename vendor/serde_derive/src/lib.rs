//! Derive macros for the offline `serde` stand-in.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; parsing is done directly on the `proc_macro` token stream.
//! Supported inputs: structs (named / tuple / unit) and enums whose variants
//! are unit, tuple, or struct-like. Generic parameters are supported with a
//! blanket `T: Serialize` bound per type parameter. `#[serde(...)]`
//! attributes are not interpreted (the workspace does not use them).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Type parameter identifiers (lifetimes and const params excluded).
    type_params: Vec<String>,
    /// Lifetime parameter names, without the leading tick.
    lifetimes: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Splits the tokens of a brace/paren group into top-level field chunks,
/// treating `<`/`>` nesting as one level so commas inside generic arguments
/// do not split a field.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strips leading outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from a field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

/// Field name of a named-field chunk: the identifier before the first `:`.
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let chunk = strip_attrs_and_vis(chunk);
    match chunk.first() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility before the `struct`/`enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Generics: collect parameter idents between balanced `<` and `>`.
    let mut type_params = Vec::new();
    let mut lifetimes = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            // A parameter ident appears right after `<` or a depth-1 comma;
            // `'` marks a lifetime, `const` a const parameter.
            let mut expect_param = true;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                        i += 1;
                        continue;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 => {
                        if expect_param {
                            if let Some(TokenTree::Ident(id)) = tokens.get(i + 1) {
                                lifetimes.push(id.to_string());
                            }
                            expect_param = false;
                        }
                        i += 2;
                        continue;
                    }
                    Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        if s == "const" {
                            // Const parameter: record nothing; the impl
                            // header repeats the declaration verbatim below
                            // is not supported — none exist in-tree.
                            panic!("serde derive: const generics unsupported");
                        }
                        type_params.push(s);
                        expect_param = false;
                    }
                    None => panic!("serde derive: unbalanced generics"),
                    _ => {}
                }
                i += 1;
            }
        }
    }

    // Skip an optional where-clause: everything until the body group / `;`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let chunks = split_top_level(g.stream().into_iter().collect());
                if keyword == "struct" {
                    let fields: Vec<String> = chunks.iter().filter_map(|c| field_name(c)).collect();
                    break Kind::NamedStruct(fields);
                } else {
                    let variants = chunks.iter().map(|c| parse_variant(c)).collect::<Vec<_>>();
                    break Kind::Enum(variants);
                }
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
            {
                let n = split_top_level(g.stream().into_iter().collect()).len();
                break Kind::TupleStruct(n);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                break Kind::UnitStruct;
            }
            Some(_) => i += 1,
            None => break Kind::UnitStruct,
        }
    };

    Input {
        name,
        type_params,
        lifetimes,
        kind,
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let chunk = strip_attrs_and_vis(chunk);
    let name = match chunk.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected variant name, got {other:?}"),
    };
    let fields = match chunk.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantFields::Tuple(split_top_level(g.stream().into_iter().collect()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let names = split_top_level(g.stream().into_iter().collect())
                .iter()
                .filter_map(|c| field_name(c))
                .collect();
            VariantFields::Named(names)
        }
        // Unit variant, possibly with `= discr` (ignored).
        _ => VariantFields::Unit,
    };
    Variant { name, fields }
}

/// `Name<T, U>` / `Name<'a, T>` type header for impl blocks.
fn ty_header(input: &Input) -> String {
    if input.type_params.is_empty() && input.lifetimes.is_empty() {
        input.name.clone()
    } else {
        let mut parts: Vec<String> = input.lifetimes.iter().map(|l| format!("'{l}")).collect();
        parts.extend(input.type_params.iter().cloned());
        format!("{}<{}>", input.name, parts.join(", "))
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let mut generics: Vec<String> = input.lifetimes.iter().map(|l| format!("'{l}")).collect();
    generics.extend(
        input
            .type_params
            .iter()
            .map(|p| format!("{p}: serde::Serialize")),
    );
    let generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };

    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                b.push_str(&format!(
                    "serde::json::key(out, \"{f}\", {first});\n\
                     serde::Serialize::json_into(&self.{f}, out);\n",
                    first = i == 0
                ));
            }
            b.push_str("out.push('}');\n");
            b
        }
        Kind::TupleStruct(1) => {
            // Newtype transparency, matching serde_json's behaviour.
            String::from("serde::Serialize::json_into(&self.0, out);\n")
        }
        Kind::TupleStruct(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("serde::Serialize::json_into(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');\n");
            b
        }
        Kind::UnitStruct => format!("serde::json::escape_str(\"{}\", out);\n", input.name),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "Self::{vn} => serde::json::escape_str(\"{vn}\", out),\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner = String::new();
                        if *n == 1 {
                            inner.push_str("serde::Serialize::json_into(f0, out);");
                        } else {
                            inner.push_str("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    inner.push_str("out.push(',');");
                                }
                                inner.push_str(&format!("serde::Serialize::json_into({b}, out);"));
                            }
                            inner.push_str("out.push(']');");
                        }
                        arms.push_str(&format!(
                            "Self::{vn}({params}) => {{\n\
                             out.push('{{');\n\
                             serde::json::key(out, \"{vn}\", true);\n\
                             {inner}\n\
                             out.push('}}');\n\
                             }}\n",
                            params = binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from("out.push('{');");
                        for (i, f) in fields.iter().enumerate() {
                            inner.push_str(&format!(
                                "serde::json::key(out, \"{f}\", {first});\
                                 serde::Serialize::json_into({f}, out);",
                                first = i == 0
                            ));
                        }
                        inner.push_str("out.push('}');");
                        arms.push_str(&format!(
                            "Self::{vn} {{ {params} }} => {{\n\
                             out.push('{{');\n\
                             serde::json::key(out, \"{vn}\", true);\n\
                             {inner}\n\
                             out.push('}}');\n\
                             }}\n",
                            params = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };

    format!(
        "impl{generics} serde::Serialize for {ty} {{\n\
         fn json_into(&self, out: &mut String) {{\n\
         {body}\
         }}\n\
         }}\n",
        ty = ty_header(&input)
    )
    .parse()
    .expect("serde derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let mut generics: Vec<String> = vec!["'de".to_string()];
    generics.extend(input.lifetimes.iter().map(|l| format!("'{l}")));
    generics.extend(input.type_params.iter().cloned());
    format!(
        "impl<{}> serde::Deserialize<'de> for {} {{}}\n",
        generics.join(", "),
        ty_header(&input)
    )
    .parse()
    .expect("serde derive: generated impl failed to parse")
}

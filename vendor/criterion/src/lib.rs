//! Offline stand-in for `criterion`, resolved by path from the workspace.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`, `black_box` — with a simple
//! timing loop (fixed warm-up then a measured batch) instead of criterion's
//! statistical machinery. Each benchmark prints `name ... median-ish ns/iter`.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier used by `bench_with_input`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        run_one(&name.into(), self.sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.label);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&full);
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    bencher.report(name);
}

pub struct Bencher {
    sample_size: usize,
    per_iter: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            per_iter: None,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, then timed samples; keep the fastest third's mean as a
        // noise-resistant point estimate.
        for _ in 0..2 {
            black_box(f());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let keep = (samples.len() / 3).max(1);
        let total: Duration = samples.iter().take(keep).sum();
        self.per_iter = Some(total / keep as u32);
    }

    fn report(&self, name: &str) {
        match self.per_iter {
            Some(d) => println!("bench {name:60} {:>12} ns/iter", d.as_nanos()),
            None => println!("bench {name:60} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for `proptest`, resolved by path from the workspace.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range and
//! `any::<bool>()` strategies, tuple composition, `prop::collection::vec` /
//! `btree_set`, weighted [`prop_oneof!`], `prop_assert!` family, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (stable across runs and machines, so CI is
//! reproducible), there is no shrinking (the failing case index and its
//! inputs are printed instead), and `.proptest-regressions` files are not
//! replayed.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic split-mix style generator driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed for the `case`-th execution of a named test. The test name is
    /// mixed in so sibling tests see different streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply mapping is unbiased enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generation strategy. Object-safe so heterogeneous strategies can be
/// boxed for [`prop_oneof!`].
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Extension adaptors (kept separate so `Strategy` stays object-safe).
pub trait StrategyExt: Strategy + Sized {
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_u64() as $t / (u64::MAX as $t + 1.0);
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Uniform in [0, 1] with the endpoint reachable.
                let unit = rng.next_u64() as $t / u64::MAX as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

/// `any::<T>()` — uniform draw over the whole domain.
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Map<AnyBits, fn(u64) -> $t>;
            fn arbitrary() -> Self::Strategy {
                AnyBits.prop_map(|v| v as $t)
            }
        }
    )*};
}

pub struct AnyBits;

impl Strategy for AnyBits {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategies {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

/// Size specification for collection strategies: an exact count or a range.
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Like real proptest, duplicate draws shrink the set; a bounded
            // number of extra attempts keeps sizes close to the request.
            let target = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `prop::` namespace mirror (`use proptest::prelude::*` exposes `prop`).
pub mod strategy_mod {
    pub use crate::collection;
}

/// Weighted union used by [`prop_oneof!`].
pub struct Union<T> {
    pub options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        let mut pick = rng.below(total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// Failure value for property bodies that use `?` / early return, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: format!("rejected: {}", message.into()),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError::fail(e.to_string())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

thread_local! {
    static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// Runs `cases` executions of a property body. Used by [`proptest!`].
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, config: &ProptestConfig, mut body: F) {
    for case in 0..config.cases {
        CURRENT_CASE.with(|c| c.set(case));
        let mut rng = TestRng::for_case(name, case);
        body(&mut rng);
    }
}

/// Drop guard that reports the failing case index when a property panics.
pub struct CaseReporter<'a> {
    pub name: &'a str,
    pub inputs: String,
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let case = CURRENT_CASE.with(|c| c.get());
            eprintln!(
                "proptest stub: property `{}` failed at case {} with inputs:\n{}",
                self.name, case, self.inputs
            );
        }
    }
}

/// Formats generated inputs for failure reports.
pub fn describe_input<T: Debug>(name: &str, value: &T) -> String {
    format!("  {name} = {value:?}\n")
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:pat_param in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    let mut __inputs = String::new();
                    // Generate, record, then destructure: `$arg` may be a
                    // tuple pattern, so the whole value is described before
                    // the pattern takes it apart.
                    $(
                        let __generated = $crate::Strategy::generate(&($strat), rng);
                        __inputs.push_str(&$crate::describe_input(
                            stringify!($arg), &__generated));
                        let $arg = __generated;
                    )+
                    let __reporter = $crate::CaseReporter {
                        name: stringify!($name),
                        inputs: __inputs,
                    };
                    // The body may use `?` with `TestCaseError`, so run it
                    // in a closure returning `TestCaseResult`.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property failed: {e}");
                    }
                    drop(__reporter);
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![
                $(($weight as u32, $crate::StrategyExt::boxed($strat)),)+
            ],
        }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![
                $((1u32, $crate::StrategyExt::boxed($strat)),)+
            ],
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, StrategyExt, TestCaseError, TestCaseResult,
    };

    /// `prop::collection::...` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        // No `#[test]` meta here: the macro emits one itself, and a second
        // would trip clippy's duplicated_attributes in this crate.
        fn ranges_stay_in_bounds(
            x in 3u8..9,
            y in -4i64..4,
            v in prop::collection::vec(0u32..5, 1..10),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        fn oneof_and_map_compose(
            op in prop_oneof![
                3 => (0u8..8).prop_map(|n| n as u32),
                1 => (100u8..108).prop_map(|n| n as u32),
            ],
        ) {
            prop_assert!(op < 8 || (100..108).contains(&op));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0u64..1_000, 5..20);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::for_case("det", 7);
            s.generate(&mut rng)
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::for_case("det", 7);
            s.generate(&mut rng)
        };
        assert_eq!(a, b);
    }
}

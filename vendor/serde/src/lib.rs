//! Offline stand-in for `serde`, resolved by path from the workspace.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate supplies the subset of serde the workspace actually relies on:
//!
//! * a [`Serialize`] trait that renders values as JSON text (the only data
//!   format the experiment harness emits), with `#[derive(Serialize)]`
//!   provided by the sibling `serde_derive` stub;
//! * a [`Deserialize`] marker trait so existing `#[derive(Deserialize)]`
//!   annotations keep compiling (nothing in the workspace parses input).
//!
//! The derive macros accept plain structs (named, tuple, unit) and enums
//! (unit and data-carrying variants). `#[serde(...)]` attributes are not
//! supported — the workspace does not use any.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into JSON text.
///
/// Implementors append a valid JSON value to `out`. The derive macro emits
/// objects for named-field structs, the inner value for one-field tuple
/// structs (newtype transparency, matching serde_json), arrays for wider
/// tuple structs, and strings / tagged objects for enum variants.
pub trait Serialize {
    /// Appends this value rendered as JSON to `out`.
    fn json_into(&self, out: &mut String);

    /// Renders this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.json_into(&mut s);
        s
    }
}

/// Marker for types that could be deserialized; no decoding is provided.
pub trait Deserialize<'de>: Sized {}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                use std::fmt::Write;
                let _ = write!(out, "{}", self);
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

int_impls!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's shortest-roundtrip Display keeps output stable
                    // across runs and platforms.
                    let s = self.to_string();
                    out.push_str(&s);
                    // JSON has no integer/float distinction, but keeping a
                    // fractional marker makes the field type self-describing.
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                        out.push_str(".0");
                    }
                } else {
                    // serde_json renders non-finite floats as null.
                    out.push_str("null");
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn json_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for str {
    fn json_into(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}

impl Serialize for String {
    fn json_into(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for char {
    fn json_into(&self, out: &mut String) {
        json::escape_str(&self.to_string(), out);
    }
}
impl<'de> Deserialize<'de> for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_into(&self, out: &mut String) {
        (**self).json_into(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_into(&self, out: &mut String) {
        (**self).json_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_into(&self, out: &mut String) {
        match self {
            Some(v) => v.json_into(out),
            None => out.push_str("null"),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_into(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_into(&self, out: &mut String) {
        self.as_slice().json_into(out);
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_into(&self, out: &mut String) {
        self.as_slice().json_into(out);
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_into(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json_into(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json_into(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_str(&k.to_string(), out);
            out.push(':');
            v.json_into(out);
        }
        out.push('}');
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn json_into(&self, out: &mut String) {
        // Sort keys so the rendered JSON is independent of hash iteration
        // order — a hard requirement for the bench harness determinism test.
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_str(k, out);
            out.push(':');
            v.json_into(out);
        }
        out.push('}');
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_into(out);
        }
        out.push(']');
    }
}

/// Support utilities used by the derive expansion and by hand-written impls.
pub mod json {
    /// Appends `s` as a quoted, escaped JSON string.
    pub fn escape_str(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Appends `"key":` (with a leading comma unless first) — derive helper.
    pub fn key(out: &mut String, name: &str, first: bool) {
        if !first {
            out.push(',');
        }
        escape_str(name, out);
        out.push(':');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(42u32.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(2.0f64.to_json(), "2.0");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b".to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(7u8).to_json(), "7");
        assert_eq!(Option::<u8>::None.to_json(), "null");
        assert_eq!((1u8, "x").to_json(), "[1,\"x\"]");
    }

    #[test]
    fn hashmap_keys_are_sorted() {
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(m.to_json(), "{\"a\":1,\"b\":2}");
    }
}

#!/usr/bin/env bash
# Codegen proof that the structured event pipeline is zero-cost when off.
#
# The simulation models are generic over `starlite::EventSink`; the
# default instantiation uses `NullSink`, whose `EventSink::ENABLED`
# associated const is `false`. Every emit / journal-drain path is gated
# on that const, so the optimiser must delete the entire instrumentation
# layer from the NullSink monomorphisations.
#
# This script checks the claim against the emitted LLVM IR:
#
#   1. The `rtlock` library IR (which contains the NullSink
#      monomorphisations of both simulators, instantiated by the
#      non-generic `run_transactions*` wrappers) must contain ZERO
#      references to the sink-layer drain helpers. The only journal
#      symbols allowed are the lock-table drains inside the `dyn
#      LockProtocol` implementations, which are runtime-gated on the
#      protocol's tracing flag and cannot be monomorphised away.
#
#   2. As a positive control, the `rtlock-bench` library IR (whose
#      non-generic sweep entry points instantiate the traced sinks for
#      `--trace` / `--check`) must still contain those helpers — proving
#      the grep would catch them if they survived in the null path.
set -euo pipefail
cd "$(dirname "$0")/.."

SINK_HELPERS='flush_cpu_journal|flush_kernel_journals|drain_pcp|drain_protocol'

echo "sink-codegen: emitting LLVM IR for the rtlock library (NullSink instantiations)"
rm -f target/release/deps/rtlock-*.ll
touch crates/core/src/lib.rs # force re-emission even on a fresh build
cargo rustc --release -q -p rtlock --lib -- --emit=llvm-ir
lib_ll=$(ls -t target/release/deps/rtlock-*.ll | head -1)

hits=$(grep -cE "${SINK_HELPERS}" "${lib_ll}" || true)
if [ "${hits}" -ne 0 ]; then
    echo "sink-codegen: FAIL - ${hits} sink drain reference(s) survive in ${lib_ll}:" >&2
    grep -nE "${SINK_HELPERS}" "${lib_ll}" | head >&2
    exit 1
fi
echo "sink-codegen: OK - no sink drain helpers in the NullSink library IR"

echo "sink-codegen: emitting LLVM IR for rtlock-bench (traced instantiations, positive control)"
rm -f target/release/deps/rtlock_bench-*.ll
touch crates/bench/src/lib.rs
cargo rustc --release -q -p rtlock-bench --lib -- --emit=llvm-ir
bin_ll=$(ls -t target/release/deps/rtlock_bench-*.ll | head -1)

control=$(grep -cE "${SINK_HELPERS}" "${bin_ll}" || true)
if [ "${control}" -eq 0 ]; then
    echo "sink-codegen: FAIL - positive control found no drain helpers in ${bin_ll};" >&2
    echo "sink-codegen: the grep pattern no longer matches real symbols" >&2
    exit 1
fi
echo "sink-codegen: OK - positive control sees ${control} drain reference(s) in the traced binary"
echo "sink-codegen: PASS"

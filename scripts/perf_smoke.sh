#!/usr/bin/env bash
# Perf-smoke gate for CI and local use.
#
# Re-runs the full figure sweep single-threaded and enforces:
#   1. Output parity: results/*.json must match the committed figures
#      exactly, except the environment-dependent `wall_clock_seconds`
#      and `workers` fields. The run is traced, so the committed Chrome
#      trace golden (results/all_figures.trace.json) is covered by the
#      same diff — tracing must stay byte-deterministic.
#   2. Wall clock: all_figures must not take more than 2x the committed
#      BENCH_SWEEP.json baseline.
#   3. Invariants: both sweeps run under `--check`, which streams every
#      run's event trace through the online oracle (monitor::CheckSink)
#      and exits non-zero on any protocol violation. The oracle only
#      observes, so parity in (1) is unaffected.
#
# Refreshed BENCH_SWEEP.json / results timing fields are left in the
# working tree; commit them when the change is a deliberate perf shift.
set -euo pipefail
cd "$(dirname "$0")/.."

wall_clock() {
    awk -F': ' '/"wall_clock_seconds"/ { gsub(/,/, "", $2); print $2; exit }' BENCH_SWEEP.json
}

baseline=$(wall_clock)
if [ -z "${baseline}" ]; then
    echo "perf-smoke: no committed wall clock in BENCH_SWEEP.json" >&2
    exit 1
fi

cargo build --release --workspace
RTLOCK_BENCH_WORKERS=1 ./target/release/all_figures --check --trace results/all_figures.trace.json

# The fault sweep is fully seeded (workload and fault streams), so its
# results file must also reproduce byte-for-byte against the committed
# golden; the parity diff below covers it.
RTLOCK_BENCH_WORKERS=1 ./target/release/ablation_faults --check > /dev/null

echo "perf-smoke: checking simulation output parity"
if ! git diff --exit-code -I'"wall_clock_seconds"' -I'"workers"' -- results/; then
    echo "perf-smoke: results/ drifted from the committed figures" >&2
    exit 1
fi

current=$(wall_clock)
echo "perf-smoke: wall clock ${current}s (committed baseline ${baseline}s)"
if ! awk -v cur="${current}" -v base="${baseline}" 'BEGIN { exit !(cur <= 2.0 * base) }'; then
    echo "perf-smoke: all_figures regressed more than 2x (${current}s vs ${baseline}s)" >&2
    exit 1
fi
echo "perf-smoke: OK"

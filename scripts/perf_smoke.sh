#!/usr/bin/env bash
# Perf-smoke gate for CI and local use.
#
# Re-runs the full figure sweep single-threaded and enforces:
#   1. Output parity: results/*.json must match the committed figures
#      exactly, except the environment-dependent `wall_clock_seconds`
#      and `workers` fields. The run is traced, so the committed Chrome
#      trace golden (results/all_figures.trace.json) is covered by the
#      same diff — tracing must stay byte-deterministic.
#   2. Wall clock: all_figures must not take more than 2x the committed
#      BENCH_SWEEP.json baseline.
#   3. Throughput: all_figures events/sec must not drop more than 20%
#      below the committed BENCH_SWEEP.json baseline. This is the
#      event-core regression gate: wall clock tolerates machine
#      variance at 2x, events/sec pins the simulator's speed itself.
#   4. Invariants: the sweeps run under `--check`, which streams every
#      run's event trace through the online oracle (monitor::CheckSink)
#      and exits non-zero on any protocol violation. The oracle only
#      observes, so parity in (1) is unaffected.
#   5. Scale: a reduced `fig_scale --smoke --check` pass, so the
#      million-transaction configuration stays runnable and invariant-
#      clean on every push without full-sweep cost.
#   5b. Live backend: a reduced `fig_live --smoke --check` pass runs all
#      four protocols on real worker threads and replays each merged
#      event stream through the oracle under CheckConfig::live. Smoke
#      mode writes no artifacts, so the parity diff in (1) is untouched.
#   5c. Temporal readers: a reduced `fig_temporal --smoke --check` pass
#       runs the lock-based, latch-scan and snapshot reader classes at
#       the highest update rate and asserts the snapshot arm misses
#       fewer reader deadlines than the lock arm, oracle-checked. Smoke
#       mode writes no artifacts; the committed fig_temporal.json golden
#       is covered by the parity diff in (1).
#   6. Inspection: the run records a replayable JSONL trace
#      (results/all_figures.trace.jsonl, committed, covered by the
#      parity diff in (1)) and `rtlock-inspect` must answer `summary`
#      and `top-blockers` against it.
#   7. Codegen: scripts/check_sink_codegen.sh proves the untraced
#      library still contains no journal drain/flush symbols, so the
#      new profiling sinks stay strictly opt-in.
#
# Refreshed BENCH_SWEEP.json / results timing fields are left in the
# working tree; commit them when the change is a deliberate perf shift.
set -euo pipefail
cd "$(dirname "$0")/.."

# Extracts a numeric field from the named experiment's BENCH_SWEEP.json
# entry (the file holds one entry per experiment).
sweep_field() {
    awk -F': ' -v exp_name="\"$1\"" -v field="\"$2\"" '
        $1 ~ /"experiment"/ { gsub(/,$/, "", $2); current = $2 }
        index($1, field) && current == exp_name { gsub(/,$/, "", $2); print $2; exit }
    ' BENCH_SWEEP.json
}

baseline=$(sweep_field all_figures wall_clock_seconds)
baseline_eps=$(sweep_field all_figures events_per_sec)
if [ -z "${baseline}" ] || [ -z "${baseline_eps}" ]; then
    echo "perf-smoke: no committed all_figures wall clock / events_per_sec in BENCH_SWEEP.json" >&2
    exit 1
fi

cargo build --release --workspace
RTLOCK_BENCH_WORKERS=1 ./target/release/all_figures --check \
    --trace results/all_figures.trace.json \
    --record=results/all_figures.trace.jsonl

# The fault sweep is fully seeded (workload and fault streams), so its
# results file must also reproduce byte-for-byte against the committed
# golden; the parity diff below covers it.
RTLOCK_BENCH_WORKERS=1 ./target/release/ablation_faults --check > /dev/null

# Reduced-scale pass over the stress configuration. `--smoke` skips the
# BENCH_SWEEP.json record, so the committed full-scale entry survives.
RTLOCK_BENCH_WORKERS=1 ./target/release/fig_scale --smoke --check

# Real-threads backend, oracle-checked. `--smoke` writes no artifacts,
# so the committed fig_live.json and BENCH_SWEEP entry survive.
RTLOCK_BENCH_WORKERS=1 ./target/release/fig_live --smoke --check

# Reader service classes over the multiversion store. Asserts snapshot
# readers beat lock-based readers on deadline misses at the top update
# rate; `--smoke` writes no artifacts.
RTLOCK_BENCH_WORKERS=1 ./target/release/fig_temporal --smoke --check

echo "perf-smoke: checking simulation output parity"
if ! git diff --exit-code -I'"wall_clock_seconds"' -I'"workers"' -- results/; then
    echo "perf-smoke: results/ drifted from the committed figures" >&2
    exit 1
fi

current=$(sweep_field all_figures wall_clock_seconds)
echo "perf-smoke: wall clock ${current}s (committed baseline ${baseline}s)"
if ! awk -v cur="${current}" -v base="${baseline}" 'BEGIN { exit !(cur <= 2.0 * base) }'; then
    echo "perf-smoke: all_figures regressed more than 2x (${current}s vs ${baseline}s)" >&2
    exit 1
fi

current_eps=$(sweep_field all_figures events_per_sec)
echo "perf-smoke: throughput ${current_eps} events/sec (committed baseline ${baseline_eps})"
if ! awk -v cur="${current_eps}" -v base="${baseline_eps}" 'BEGIN { exit !(cur >= 0.8 * base) }'; then
    echo "perf-smoke: all_figures throughput dropped more than 20% (${current_eps} vs ${baseline_eps} events/sec)" >&2
    exit 1
fi

echo "perf-smoke: querying the recorded trace with rtlock-inspect"
./target/release/rtlock-inspect summary results/all_figures.trace.jsonl > /dev/null
./target/release/rtlock-inspect top-blockers results/all_figures.trace.jsonl > /dev/null

./scripts/check_sink_codegen.sh

echo "perf-smoke: OK"
